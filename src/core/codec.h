// The block-random-access codec interface.
//
// Every code-compression scheme that can live behind a cache refill engine
// implements BlockCodec: compress a whole text segment into a
// CompressedImage, and decompress any single block independently of the
// others (the paper's central constraint — jumps mean the engine cannot
// rely on having decompressed the preceding blocks).
//
// Decompression is split into a factory step (deserialize the tables once,
// as hardware would hold them in the decompressor's local memory) and a
// per-block step (what one cache miss triggers).
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/image.h"

namespace ccomp::core {

/// Caller-owned reusable buffers for the zero-allocation refill path.
///
/// Decoders that need intermediate per-block storage (SADC's stream arenas,
/// the x86 splitters' per-instruction records) take it from here instead of
/// allocating: the buffers grow to the high-water mark of the blocks they
/// serve and are reused verbatim afterwards, so a steady-state cache refill
/// touches the heap zero times (tests/test_allocfree.cpp asserts this).
///
/// A DecodeScratch belongs to exactly one caller at a time — the memory
/// systems keep one as a member, parallel sweeps keep one per worker
/// thread. The fields are deliberately generic untyped arenas; each decoder
/// documents its own use. `block` is reserved for *callers* that need a
/// whole-block staging buffer (verification, scrubbing) — decoders never
/// touch it, so a caller may pass `scratch.block` as the output span of a
/// block_into on the same scratch.
struct DecodeScratch {
  std::vector<std::uint8_t> bytes0;   // e.g. register / opcode-byte arena
  std::vector<std::uint8_t> bytes1;   // e.g. displacement/immediate arena
  std::vector<std::uint32_t> words0;  // e.g. per-instruction shape records
  std::vector<const void*> ptrs0;     // e.g. dictionary leaf pointers
  std::vector<std::uint8_t> block;    // caller-side whole-block staging
};

/// Per-image decompressor holding the deserialized model state.
///
/// Decompressors are immutable after construction: block() / block_into()
/// are const and keep all walk state on the stack or in the caller's
/// DecodeScratch, so one decompressor may serve concurrent block requests
/// from multiple threads (what the parallel decompress_all and the
/// verification pass rely on) as long as each caller brings its own
/// scratch.
class BlockDecompressor {
 public:
  virtual ~BlockDecompressor() = default;

  /// Decompress block `index` to its original bytes. Must work for any
  /// index in any order (random access).
  virtual std::vector<std::uint8_t> block(std::size_t index) const = 0;

  /// Decompress block `index` directly into `out`, whose size must equal
  /// the block's original size. The default forwards to block() and copies;
  /// hot-path decompressors override it to skip the per-call allocation
  /// (the cache refill engine reuses its line buffers across refills).
  virtual void block_into(std::size_t index, std::span<std::uint8_t> out) const;

  /// Like block_into(out) but with caller-owned scratch for any
  /// intermediate state, making the steady-state call allocation-free. The
  /// default ignores the scratch and forwards to the two-argument overload;
  /// decoders with per-block intermediates override this one.
  virtual void block_into(std::size_t index, std::span<std::uint8_t> out,
                          DecodeScratch& scratch) const;

  std::size_t block_count() const { return block_count_; }

 protected:
  explicit BlockDecompressor(std::size_t block_count) : block_count_(block_count) {}

 private:
  std::size_t block_count_;
};

class BlockCodec {
 public:
  virtual ~BlockCodec() = default;

  virtual std::string_view name() const = 0;

  /// Compress a full text segment.
  virtual CompressedImage compress(std::span<const std::uint8_t> code) const = 0;

  /// Build a decompressor bound to `image` (which must outlive it).
  virtual std::unique_ptr<BlockDecompressor> make_decompressor(
      const CompressedImage& image) const = 0;

  /// Convenience: decompress every block and concatenate. Blocks are
  /// decompressed in parallel (see support/parallel.h); each block writes
  /// its own span of the output, so the result is identical at any thread
  /// count.
  std::vector<std::uint8_t> decompress_all(const CompressedImage& image) const;

  /// Convenience: compress, decompress, and verify the round trip (also in
  /// out-of-order block access, in parallel); returns the image. Throws
  /// CorruptDataError on any mismatch. Used by tests and by the examples'
  /// --verify mode.
  CompressedImage compress_verified(std::span<const std::uint8_t> code) const;
};

}  // namespace ccomp::core
