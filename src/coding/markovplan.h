// Flattened decode plan for a MarkovModel (the precompiled-table engine).
//
// MarkovCursor resolves every decoded bit through two levels of indirection
// (trees_[stream][ctx * tree_nodes + node]) plus per-bit stream/context
// bookkeeping. That is faithful to the model definition but slow in the
// refill hot path. A MarkovDecodePlan compiles the whole walk — stream
// division, context selection, word-boundary resets — into one contiguous
// struct-of-arrays state machine, built once when the decompressor is
// constructed (as hardware would burn the tables into the decoder's local
// memory):
//
//   state = plan.next(state, bit)
//
// with per-state probability and output bit position looked up by the same
// index. A plan state is the triple (stream, ctx, node), which is a
// sufficient statistic for the cursor: the only history the cursor keeps
// beyond it is recent_bits_, and at a stream boundary the new context
//
//   ctx' = ((ctx << width) | v) & (2^context_bits - 1)
//
// depends only on the old context and the stream's decoded value v — the
// trailing context_bits of history at stream entry *are* ctx (zero at block
// start, reset with it at word boundaries when connect_across_words is
// off). So the flattened machine reproduces the cursor transition for
// transition, and plan-driven decoders are bit-exact with cursor-driven
// ones (tests/test_decodeplan.cpp locks this in).
//
// Pathologically large models (wide streams x many contexts) are refused
// rather than compiled: viable() reports whether the plan was built, and
// callers fall back to the cursor engine. The cap is far above every
// configuration the paper sweeps.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "coding/markov.h"

namespace ccomp::coding {

class MarkovDecodePlan {
 public:
  /// States above this are refused (viable() == false): the plan would no
  /// longer fit a decoder's local table memory, and the build itself would
  /// cost more than it saves. 2^20 states is ~11 MB of tables; the paper's
  /// configurations stay under a few thousand states.
  static constexpr std::size_t kMaxStates = std::size_t{1} << 20;

  /// Compile `model`. The plan copies everything it needs; the model may be
  /// destroyed afterwards.
  explicit MarkovDecodePlan(const MarkovModel& model);

  /// False when the model was too large to flatten; no other member may be
  /// used in that case (callers keep a MarkovCursor fallback).
  bool viable() const { return viable_; }

  std::size_t state_count() const { return prob0_.size(); }

  /// The start-of-block state (stream 0, context 0, tree root).
  static constexpr std::uint32_t kStartState = 0;

  /// P(bit == 0) for the bit decoded in state `s`.
  Prob prob0(std::uint32_t s) const { return prob0_[s]; }

  /// Bit position within the word that state `s` decodes.
  unsigned bit_pos(std::uint32_t s) const { return bit_pos_[s]; }

  /// Successor state after decoding `bit` in state `s`.
  std::uint32_t next(std::uint32_t s, unsigned bit) const {
    return next_[2 * std::size_t{s} + bit];
  }

  /// Both successors of `s` in one table fetch: low word is next(s, 0),
  /// high word next(s, 1). The hot loops issue this before the coder
  /// resolves the bit, so the successor is a register select instead of a
  /// dependent load.
  std::uint64_t next_pair(std::uint32_t s) const {
    std::uint64_t pair;
    std::memcpy(&pair, next_.data() + 2 * std::size_t{s}, sizeof pair);
    if constexpr (std::endian::native == std::endian::big)
      pair = (pair << 32) | (pair >> 32);
    return pair;
  }

  /// The whole decode record of state `s` in ONE table fetch: P(bit == 0)
  /// in bits [0, 16), the bit-0 successor in [16, 40), the bit-1 successor
  /// in [40, 64). Successor indices fit 24 bits because kMaxStates is 2^20.
  /// The interleaved decoder runs on this instead of prob0()/next_pair():
  /// one load per decoded bit instead of two halves the load-port pressure
  /// of K round-robin lanes and frees the second table base register, and
  /// the successor extraction is a variable shift off the decoded bit —
  /// no branch, no cmov, nothing for the if-converter to undo.
  std::uint64_t fused(std::uint32_t s) const { return fused_[s]; }

  /// Extract P(bit == 0) from a fused() record.
  static Prob fused_prob0(std::uint64_t f) { return static_cast<Prob>(f & 0xFFFFu); }

  /// Extract the successor for `bit` from a fused() record. Constant
  /// shifts + a mask select, not `f >> (16 + 24 * bit)`: GCC lowers the
  /// latter to a flags-recompute + variable shift, which is both more ops
  /// and a shift-port bottleneck with K lanes in flight.
  static std::uint32_t fused_next(std::uint64_t f, unsigned bit) {
    const std::uint32_t n0 = static_cast<std::uint32_t>(f >> 16) & 0xFFFFFFu;
    const std::uint32_t n1 = static_cast<std::uint32_t>(f >> 40);
    return n0 + ((0u - bit) & (n1 - n0));
  }

  /// Gather the 15 heap-ordered probabilities of the 4-bit subtree rooted at
  /// state `s` (the Fig. 5 "probability memory" fetch). Only valid when the
  /// model's stream widths are multiples of 4 (the nibble-mode constraint),
  /// so the first three levels of the subtree never cross a stream boundary.
  void gather_nibble(std::uint32_t s, Prob out[15]) const {
    std::uint32_t st[15];
    st[0] = s;
    for (std::size_t i = 0; i < 7; ++i) {
      st[2 * i + 1] = next(st[i], 0);
      st[2 * i + 2] = next(st[i], 1);
    }
    for (std::size_t i = 0; i < 15; ++i) out[i] = prob0_[st[i]];
  }

 private:
  bool viable_ = false;
  std::vector<Prob> prob0_;         // per state
  std::vector<std::uint8_t> bit_pos_;  // per state
  std::vector<std::uint32_t> next_;    // 2 per state: [2s] on 0, [2s+1] on 1
  std::vector<std::uint64_t> fused_;   // per state: prob0 | next0 << 16 | next1 << 40
};

}  // namespace ccomp::coding
