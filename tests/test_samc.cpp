#include "samc/samc.h"

#include <gtest/gtest.h>

#include "isa/mips/mips.h"
#include "support/rng.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

namespace ccomp::samc {
namespace {

std::vector<std::uint8_t> small_mips_code(const char* name, std::uint32_t kb) {
  workload::Profile p = *workload::find_profile(name);
  p.code_kb = kb;
  return mips::words_to_bytes(workload::generate_mips(p));
}

TEST(Samc, RoundTripsMipsCode) {
  const auto code = small_mips_code("compress", 16);
  const SamcCodec codec(mips_defaults());
  const auto image = codec.compress_verified(code);  // throws on mismatch
  EXPECT_EQ(image.original_size(), code.size());
  EXPECT_EQ(image.block_count(), (code.size() + 31) / 32);
}

TEST(Samc, CompressesMipsCodeSubstantially) {
  const auto code = small_mips_code("gcc", 64);
  const SamcCodec codec(mips_defaults());
  const auto image = codec.compress(code);
  const double ratio = image.sizes().ratio();
  EXPECT_LT(ratio, 0.75);
  EXPECT_GT(ratio, 0.2);
}

TEST(Samc, RandomBlockAccessMatchesSequential) {
  const auto code = small_mips_code("go", 8);
  const SamcCodec codec(mips_defaults());
  const auto image = codec.compress(code);
  const auto dec = codec.make_decompressor(image);
  Rng rng(55);
  for (int i = 0; i < 64; ++i) {
    const std::size_t b = rng.next_below(image.block_count());
    const auto block = dec->block(b);
    ASSERT_EQ(block.size(), image.block_original_size(b));
    EXPECT_TRUE(std::equal(block.begin(), block.end(), code.begin() + static_cast<long>(b * 32)));
  }
}

TEST(Samc, WorksOnX86ByteCode) {
  workload::Profile p = *workload::find_profile("ijpeg");
  p.code_kb = 16;
  const auto code = workload::generate_x86(p);
  const SamcCodec codec(x86_defaults());
  const auto image = codec.compress_verified(code);
  EXPECT_LT(image.sizes().ratio(), 0.95);
}

TEST(Samc, QuantizedModeRoundTripsAndCostsLittle) {
  const auto code = small_mips_code("perl", 24);
  SamcOptions exact = mips_defaults();
  SamcOptions quant = mips_defaults();
  quant.markov.quantized = true;
  quant.markov.max_shift = 8;
  const SamcCodec exact_codec(exact);
  const SamcCodec quant_codec(quant);
  const auto exact_image = exact_codec.compress(code);
  const auto quant_image = quant_codec.compress_verified(code);
  // Coarser probabilities can only lengthen the coded payload (Witten et
  // al. bound the loss at a few percent)...
  EXPECT_GE(quant_image.sizes().payload, exact_image.sizes().payload);
  EXPECT_LT(static_cast<double>(quant_image.sizes().payload),
            static_cast<double>(exact_image.sizes().payload) * 1.12);
  // ...while the hardware probability format halves the stored tables, so
  // the total can even come out ahead.
  EXPECT_LE(quant_image.sizes().tables * 2, exact_image.sizes().tables + 64);
  EXPECT_LT(quant_image.sizes().ratio(), exact_image.sizes().ratio() * 1.12);
}

TEST(Samc, ConnectedTreesImproveCompression) {
  // Connecting trees doubles the probability tables (charged to the ratio),
  // so the payload savings only win above ~70 KB of text — use a realistic
  // program size, as the paper's SPEC95 binaries were.
  const auto code = small_mips_code("m88ksim", 128);
  SamcOptions connected = mips_defaults();
  SamcOptions independent = mips_defaults();
  independent.markov.context_bits = 0;
  independent.markov.connect_across_words = false;
  const double r_connected = SamcCodec(connected).compress(code).sizes().ratio();
  const double r_independent = SamcCodec(independent).compress(code).sizes().ratio();
  EXPECT_LT(r_connected, r_independent);
}

TEST(Samc, BlockSizeHasMinimalImpact) {
  // The paper: "different cache block sizes have a minimal impact".
  const auto code = small_mips_code("applu", 32);
  double ratios[3];
  int i = 0;
  for (const std::uint32_t bs : {16u, 32u, 64u}) {
    SamcOptions o = mips_defaults();
    o.block_size = bs;
    ratios[i++] = SamcCodec(o).compress(code).sizes().ratio();
  }
  EXPECT_LT(std::abs(ratios[0] - ratios[2]), 0.08);
}

TEST(Samc, CoderOverheadIsBounded) {
  // Payload must stay within a few bytes/block of the model's entropy bound.
  const auto code = small_mips_code("xlisp", 16);
  const SamcCodec codec(mips_defaults());
  const auto image = codec.compress(code);
  const double model_bits = codec.estimate_payload_bits(code);
  const double payload_bits = 8.0 * static_cast<double>(image.sizes().payload);
  const double blocks = static_cast<double>(image.block_count());
  EXPECT_LT(payload_bits, model_bits + blocks * 40.0);  // < 5 bytes/block overhead
}

TEST(Samc, EmptyProgram) {
  const SamcCodec codec(mips_defaults());
  const auto image = codec.compress({});
  EXPECT_EQ(image.block_count(), 0u);
  EXPECT_TRUE(codec.decompress_all(image).empty());
}

TEST(Samc, MisalignedCodeThrows) {
  const std::vector<std::uint8_t> code(30, 0);  // not a multiple of 4
  const SamcCodec codec(mips_defaults());
  EXPECT_THROW(codec.compress(code), ConfigError);
}

TEST(Samc, RejectsBadConfigs) {
  SamcOptions o = mips_defaults();
  o.block_size = 30;  // not a multiple of word size
  EXPECT_THROW(SamcCodec{o}, ConfigError);
}

TEST(Samc, StaticModelRoundTripsAndIsWorse) {
  // Paper Sec. 4 taxonomy: a model trained on a different program (static)
  // still decodes correctly — the tables travel with the image — but a
  // semiadaptive (per-program) model compresses the payload better.
  const auto donor = small_mips_code("gcc", 32);
  const auto subject = small_mips_code("swim", 32);
  const SamcCodec codec(mips_defaults());
  const coding::MarkovModel static_model = codec.train_model(donor);

  const auto static_image = codec.compress_with_model(subject, static_model);
  EXPECT_EQ(codec.decompress_all(static_image), subject);
  const auto own_image = codec.compress(subject);
  EXPECT_GT(static_image.sizes().payload, own_image.sizes().payload);
}

TEST(Samc, StaticModelValidatesDivision) {
  const auto code = small_mips_code("go", 8);
  const SamcCodec four(mips_defaults());
  SamcOptions other = mips_defaults();
  other.markov.division = coding::StreamDivision::contiguous(32, 8);
  const SamcCodec eight(other);
  const coding::MarkovModel model = eight.train_model(code);
  EXPECT_THROW(four.compress_with_model(code, model), ConfigError);
}

TEST(Samc, ParallelNibbleModeRoundTrips) {
  const auto code = small_mips_code("hydro2d", 16);
  samc::SamcOptions o = mips_defaults();
  o.markov.quantized = true;
  o.parallel_nibble_mode = true;
  const SamcCodec codec(o);
  codec.compress_verified(code);
}

TEST(Samc, ParallelNibbleModeCostsLittleOverQuantizedSerial) {
  const auto code = small_mips_code("apsi", 24);
  samc::SamcOptions serial = mips_defaults();
  serial.markov.quantized = true;
  samc::SamcOptions nibble = serial;
  nibble.parallel_nibble_mode = true;
  const double r_serial = SamcCodec(serial).compress(code).sizes().ratio();
  const double r_nibble = SamcCodec(nibble).compress(code).sizes().ratio();
  EXPECT_NEAR(r_nibble, r_serial, 0.02);
}

TEST(Samc, ParallelNibbleModeValidatesConstraints) {
  samc::SamcOptions o = mips_defaults();
  o.parallel_nibble_mode = true;  // missing quantization
  EXPECT_THROW(SamcCodec{o}, ConfigError);
  o.markov.quantized = true;
  o.markov.max_shift = 12;  // too fine for the shift-only hardware
  EXPECT_THROW(SamcCodec{o}, ConfigError);
  o.markov.max_shift = 8;
  o.markov.division = coding::StreamDivision::contiguous(32, 16);  // 2-bit streams
  EXPECT_THROW(SamcCodec{o}, ConfigError);
}

TEST(Samc, NibbleImagesSelfDescribe) {
  // A nibble-mode image decodes through make_decompressor without the
  // caller restating the mode.
  const auto code = small_mips_code("wave5", 8);
  samc::SamcOptions o = mips_defaults();
  o.markov.quantized = true;
  o.parallel_nibble_mode = true;
  const SamcCodec nibble_codec(o);
  const auto image = nibble_codec.compress(code);
  // Decode with a codec configured for the *serial* mode: the image's
  // engine flag must still route to the nibble decompressor.
  const SamcCodec serial_codec(mips_defaults());
  EXPECT_EQ(serial_codec.decompress_all(image), code);
}

TEST(Samc, ParallelDecodeCostModel) {
  EXPECT_EQ(parallel_decode_units(4), 15u);  // the paper's 15 midpoints
  EXPECT_EQ(parallel_decode_units(1), 1u);
  EXPECT_THROW(parallel_decode_units(0), ConfigError);
  // 32-byte block at 4 bits/cycle: 64 cycles + startup.
  EXPECT_EQ(samc_decode_cycles(32, 4, 4), 68u);
}

class SamcBlockSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SamcBlockSweep, RoundTripsAtEveryBlockSize) {
  const auto code = small_mips_code("tomcatv", 8);
  SamcOptions o = mips_defaults();
  o.block_size = GetParam();
  const SamcCodec codec(o);
  codec.compress_verified(code);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, SamcBlockSweep,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u, 128u, 256u));

class SamcDivisionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SamcDivisionSweep, RoundTripsUnderEveryContiguousDivision) {
  const auto code = small_mips_code("mgrid", 8);
  SamcOptions o = mips_defaults();
  o.markov.division = coding::StreamDivision::contiguous(32, GetParam());
  const SamcCodec codec(o);
  codec.compress_verified(code);
}

INSTANTIATE_TEST_SUITE_P(StreamCounts, SamcDivisionSweep, ::testing::Values(2u, 4u, 8u, 16u));

}  // namespace
}  // namespace ccomp::samc
