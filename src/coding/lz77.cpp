#include "coding/lz77.h"

#include <algorithm>

#include "coding/huffman.h"
#include "support/bitio.h"
#include "support/serialize.h"

namespace ccomp::coding {
namespace {

// Deflate length/distance code tables (RFC 1951 section 3.2.5).
constexpr unsigned kNumLengthCodes = 29;   // symbols 257..285
constexpr unsigned kEndOfBlock = 256;
constexpr unsigned kLitLenAlphabet = 286;  // 0..285
constexpr unsigned kNumDistCodes = 30;

constexpr std::uint16_t kLengthBase[kNumLengthCodes] = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::uint8_t kLengthExtra[kNumLengthCodes] = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr std::uint16_t kDistBase[kNumDistCodes] = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::uint8_t kDistExtra[kNumDistCodes] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                                    4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                                    9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

unsigned length_code(unsigned length) {
  // Linear scan is fine: lengths are 3..258 and the table is tiny.
  for (unsigned c = kNumLengthCodes; c-- > 0;)
    if (length >= kLengthBase[c]) return c;
  return 0;
}

unsigned dist_code(unsigned dist) {
  for (unsigned c = kNumDistCodes; c-- > 0;)
    if (dist >= kDistBase[c]) return c;
  return 0;
}

struct Token {
  // literal: length == 0, lit holds the byte. match: length >= min_match.
  std::uint16_t length = 0;
  std::uint16_t dist = 0;
  std::uint8_t lit = 0;
};

std::uint32_t hash3(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 16 | static_cast<std::uint32_t>(p[1]) << 8 |
          p[2]) *
             2654435761u >>
         17;  // 15-bit hash
}

class MatchFinder {
 public:
  MatchFinder(std::span<const std::uint8_t> data, const Lz77Options& opt)
      : data_(data), opt_(opt), window_size_(1u << opt.window_bits) {
    head_.assign(1u << 15, -1);
    prev_.assign(window_size_, -1);
  }

  struct Match {
    unsigned length = 0;
    unsigned dist = 0;
  };

  Match best_match(std::size_t pos) const {
    Match best;
    if (pos + opt_.min_match > data_.size()) return best;
    const unsigned max_len = static_cast<unsigned>(
        std::min<std::size_t>(opt_.max_match, data_.size() - pos));
    std::int64_t candidate = head_[hash3(&data_[pos])];
    unsigned chain = opt_.max_chain;
    while (candidate >= 0 && chain-- > 0) {
      const std::size_t cpos = static_cast<std::size_t>(candidate);
      if (cpos >= pos || pos - cpos > window_size_ - 1) break;
      unsigned len = 0;
      while (len < max_len && data_[cpos + len] == data_[pos + len]) ++len;
      if (len >= opt_.min_match && len > best.length) {
        best.length = len;
        best.dist = static_cast<unsigned>(pos - cpos);
        if (len >= opt_.good_enough || len == max_len) break;
      }
      candidate = prev_[cpos & (window_size_ - 1)];
    }
    return best;
  }

  void insert(std::size_t pos) {
    if (pos + 3 > data_.size()) return;
    const std::uint32_t h = hash3(&data_[pos]);
    prev_[pos & (window_size_ - 1)] = head_[h];
    head_[h] = static_cast<std::int64_t>(pos);
  }

 private:
  std::span<const std::uint8_t> data_;
  const Lz77Options& opt_;
  std::size_t window_size_;
  std::vector<std::int64_t> head_;
  std::vector<std::int64_t> prev_;
};

std::vector<Token> tokenize(std::span<const std::uint8_t> input, const Lz77Options& opt) {
  std::vector<Token> tokens;
  MatchFinder finder(input, opt);
  std::size_t pos = 0;
  while (pos < input.size()) {
    MatchFinder::Match match = finder.best_match(pos);
    if (match.length >= opt.min_match && opt.lazy_matching && match.length < opt.good_enough &&
        pos + 1 < input.size()) {
      // Lazy evaluation: if the next position has a strictly longer match,
      // emit a literal here and take the longer match next round.
      finder.insert(pos);
      const MatchFinder::Match next = finder.best_match(pos + 1);
      if (next.length > match.length) {
        tokens.push_back(Token{0, 0, input[pos]});
        ++pos;
        continue;
      }
      // Keep the current match; pos was already inserted.
      for (std::size_t i = pos + 1; i < pos + match.length; ++i) finder.insert(i);
      tokens.push_back(Token{static_cast<std::uint16_t>(match.length),
                             static_cast<std::uint16_t>(match.dist), 0});
      pos += match.length;
      continue;
    }
    if (match.length >= opt.min_match) {
      for (std::size_t i = pos; i < pos + match.length; ++i) finder.insert(i);
      tokens.push_back(Token{static_cast<std::uint16_t>(match.length),
                             static_cast<std::uint16_t>(match.dist), 0});
      pos += match.length;
    } else {
      finder.insert(pos);
      tokens.push_back(Token{0, 0, input[pos]});
      ++pos;
    }
  }
  return tokens;
}

}  // namespace

std::vector<std::uint8_t> lz77_compress(std::span<const std::uint8_t> input,
                                        const Lz77Options& options) {
  if (options.window_bits < 8 || options.window_bits > 15)
    throw ConfigError("window_bits must be in [8,15]");
  const std::vector<Token> tokens = tokenize(input, options);

  // Semi-static Huffman over the deflate alphabets.
  std::vector<std::uint64_t> litlen_freq(kLitLenAlphabet, 0);
  std::vector<std::uint64_t> dist_freq(kNumDistCodes, 0);
  for (const Token& t : tokens) {
    if (t.length == 0) {
      ++litlen_freq[t.lit];
    } else {
      ++litlen_freq[257 + length_code(t.length)];
      ++dist_freq[dist_code(t.dist)];
    }
  }
  ++litlen_freq[kEndOfBlock];
  const HuffmanCode litlen = HuffmanCode::from_frequencies(litlen_freq, 15);
  const HuffmanCode dist = HuffmanCode::from_frequencies(dist_freq, 15);

  ByteSink sink;
  sink.varint(input.size());
  litlen.serialize(sink);
  dist.serialize(sink);

  BitWriter bits;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      litlen.encode(bits, t.lit);
    } else {
      const unsigned lc = length_code(t.length);
      litlen.encode(bits, 257 + lc);
      bits.write_bits(t.length - kLengthBase[lc], kLengthExtra[lc]);
      const unsigned dc = dist_code(t.dist);
      dist.encode(bits, dc);
      bits.write_bits(t.dist - kDistBase[dc], kDistExtra[dc]);
    }
  }
  litlen.encode(bits, kEndOfBlock);
  const std::vector<std::uint8_t> payload = bits.take();
  sink.sized_bytes(payload);
  return sink.take();
}

std::vector<std::uint8_t> lz77_decompress(std::span<const std::uint8_t> input) {
  ByteSource src(input);
  const std::uint64_t original_size = src.varint();
  const HuffmanCode litlen = HuffmanCode::deserialize(src);
  const HuffmanCode dist = HuffmanCode::deserialize(src);
  const std::vector<std::uint8_t> payload = src.sized_bytes();

  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(original_size));
  BitReader bits(payload);
  for (;;) {
    const std::size_t sym = litlen.decode(bits);
    if (sym == kEndOfBlock) break;
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    const unsigned lc = static_cast<unsigned>(sym - 257);
    if (lc >= kNumLengthCodes) throw CorruptDataError("bad length code");
    const unsigned length =
        kLengthBase[lc] + static_cast<unsigned>(bits.read_bits(kLengthExtra[lc]));
    const std::size_t dc = dist.decode(bits);
    if (dc >= kNumDistCodes) throw CorruptDataError("bad distance code");
    const unsigned distance =
        kDistBase[dc] + static_cast<unsigned>(bits.read_bits(kDistExtra[dc]));
    if (distance == 0 || distance > out.size()) throw CorruptDataError("distance beyond output");
    // Byte-by-byte copy: overlapping matches (dist < length) must replicate.
    for (unsigned i = 0; i < length; ++i) out.push_back(out[out.size() - distance]);
  }
  if (out.size() != original_size) throw CorruptDataError("LZ77 output size mismatch");
  return out;
}

}  // namespace ccomp::coding
