// Self-healing compressed-code memory system.
//
// Extends the functional Wolfe/Chanin model with the fault tolerance a
// compressed store makes mandatory: one flipped bit in a compressed block
// corrupts the whole decompressed line, so the refill engine cannot trust
// the store. This model keeps a *mutable* copy of the image — the
// fault-prone store the injector (support/faultinject.h) attacks — and runs
// every refill through a recovery ladder:
//
//   1. decode + golden per-block CRC-32 check   (detection; never skipped)
//   2. bus retry                                (clears transient bus noise)
//   3. SECDED ECC correction, written back      (self-heal in place)
//   4. re-fetch from the golden backing copy    (repair from reference)
//   5. escalation                               (FaultEscalationError)
//
// The golden CRCs are computed at load time from the pristine image and
// modelled as living in protected controller SRAM, like the decompressor's
// tables. Wrong decompressed bytes are never returned: a refill either
// passes the CRC gate or throws.
//
// The CLB (cached LAT entries) carries a parity byte per entry and is
// cross-checked against the stored LAT on use — standing in for the per-entry
// ECC a hardware CLB would carry — so a corrupted entry redirects no refill.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/codec.h"
#include "memsys/cache.h"

namespace ccomp::memsys {

/// Counters the recovery ladder maintains. A fault campaign classifies each
/// injected fault by which counter moved. Counters are atomic so another
/// thread (a stats poller, the serving layer) can read them while one thread
/// drives the ladder; loads/stores are relaxed, so each counter is exact but
/// a mid-run snapshot is not a consistent cut across counters.
struct RecoveryStats {
  std::atomic<std::uint64_t> refills{0};          // ladder invocations (cache misses + reads)
  std::atomic<std::uint64_t> faults_detected{0};  // first decode attempt failed CRC or threw
  std::atomic<std::uint64_t> bus_recovered{0};    // clean after dropping transient bus noise
  std::atomic<std::uint64_t> ecc_corrected{0};    // healed in place by SECDED writeback
  std::atomic<std::uint64_t> refetched{0};        // healed from the golden backing copy
  std::atomic<std::uint64_t> escalated{0};        // ladder exhausted; FaultEscalationError
  std::atomic<std::uint64_t> clb_repaired{0};     // CLB entries caught by parity/cross-check
  std::atomic<std::uint64_t> scrubbed{0};         // blocks visited by the background scrubber
  std::atomic<std::uint64_t> scrub_corrected{0};  // scrubber SECDED corrections
  std::atomic<std::uint64_t> scrub_refetched{0};  // scrubber golden refetches

  RecoveryStats() = default;
  RecoveryStats(const RecoveryStats& other) { *this = other; }
  RecoveryStats& operator=(const RecoveryStats& other) {
    refills.store(other.refills.load(std::memory_order_relaxed), std::memory_order_relaxed);
    faults_detected.store(other.faults_detected.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    bus_recovered.store(other.bus_recovered.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    ecc_corrected.store(other.ecc_corrected.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    refetched.store(other.refetched.load(std::memory_order_relaxed), std::memory_order_relaxed);
    escalated.store(other.escalated.load(std::memory_order_relaxed), std::memory_order_relaxed);
    clb_repaired.store(other.clb_repaired.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    scrubbed.store(other.scrubbed.load(std::memory_order_relaxed), std::memory_order_relaxed);
    scrub_corrected.store(other.scrub_corrected.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    scrub_refetched.store(other.scrub_refetched.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    return *this;
  }

  /// Zero all counters. Only an explicit call does this — repair_all() and
  /// invalidate_cache() deliberately keep counters accumulating. Like
  /// CacheStats::reset(), this is not atomic as a whole: call it only while
  /// the owning system is quiescent (concurrent increments may land on
  /// either side of the per-field stores).
  void reset() {
    refills.store(0, std::memory_order_relaxed);
    faults_detected.store(0, std::memory_order_relaxed);
    bus_recovered.store(0, std::memory_order_relaxed);
    ecc_corrected.store(0, std::memory_order_relaxed);
    refetched.store(0, std::memory_order_relaxed);
    escalated.store(0, std::memory_order_relaxed);
    clb_repaired.store(0, std::memory_order_relaxed);
    scrubbed.store(0, std::memory_order_relaxed);
    scrub_corrected.store(0, std::memory_order_relaxed);
    scrub_refetched.store(0, std::memory_order_relaxed);
  }
};

/// One escalated (uncorrectable) fault, kept for post-mortem reporting.
struct FaultReport {
  std::size_t block = 0;
  std::string message;
};

class SelfHealingMemorySystem {
 public:
  struct Options {
    CacheConfig cache;
    /// Attach/consult per-block SECDED check bytes (rung 3 of the ladder).
    bool use_ecc = true;
    /// Cached LAT entries ("CLB"); 0 disables the cache.
    std::uint32_t clb_entries = 16;
  };

  /// Copies `golden` twice: once as the pristine backing reference and once
  /// as the mutable store faults are injected into. When options.use_ecc is
  /// set and the image has no ECC section, one is attached to both copies.
  SelfHealingMemorySystem(const Options& options, const core::BlockCodec& codec,
                          const core::CompressedImage& golden);

  /// Fetch through the I-cache (uniform-block images only), refilling via
  /// the recovery ladder on a miss. Throws FaultEscalationError when the
  /// ladder fails; never returns wrong bytes.
  std::uint32_t fetch(std::uint32_t address);
  std::uint8_t fetch_byte(std::uint32_t address);

  /// Run one block through the recovery ladder, bypassing the I-cache.
  /// Works for variable-block images too (what the fault campaign sweeps).
  std::vector<std::uint8_t> read_block(std::size_t index);

  /// Like read_block but into a caller-owned buffer (resized to the block's
  /// original size), so campaign loops sweeping many blocks reuse one
  /// buffer instead of allocating per read.
  void read_block_into(std::size_t index, std::vector<std::uint8_t>& out);

  /// Background scrubber: SECDED-sweep up to `max_blocks` blocks from a
  /// round-robin cursor, writing corrections back and refetching blocks the
  /// code cannot repair. Returns the number of blocks visited.
  std::size_t scrub(std::size_t max_blocks);

  /// Replace the scrubber's visit order (default: ascending block index).
  /// `order` must be a permutation-free list of valid block indices (each
  /// sweep walks it cyclically); the layout subsystem passes hot-first slot
  /// order so profile-hot blocks get the shortest exposure window. An empty
  /// list restores the default. Throws ConfigError on an out-of-range index.
  void set_scrub_order(std::vector<std::uint32_t> order);

  /// Drop every cached line (and CLB entry) so the next access re-reads the
  /// store. Campaigns call this after injecting a fault.
  void invalidate_cache();

  /// Restore the store (payload, ECC, LAT) from the golden copy and reset
  /// the CLB — a campaign's between-trial reset. Counters are kept.
  void repair_all();

  // --- Fault-injection surface ------------------------------------------
  // Byte regions the injector may corrupt. Everything else (decompressor
  // tables, golden CRCs, golden copy) models protected controller memory.

  std::span<std::uint8_t> store_payload() { return store_.mutable_payload(); }
  std::span<std::uint8_t> store_ecc() { return store_.mutable_ecc(); }
  std::span<std::uint8_t> store_lat_bytes() { return store_.mutable_lat_bytes(); }
  /// Raw bytes of the CLB entry array (offsets, lengths, parity).
  std::span<std::uint8_t> clb_bytes();
  /// Transient bus noise: XORed onto the next refill's compressed bytes,
  /// then cleared (a retry reads clean data).
  std::span<std::uint8_t> bus_buffer() { return bus_noise_; }

  /// A permanently failed store cell: `(byte & and_mask) | or_mask` is
  /// re-asserted onto `store_payload()[offset]` before every decode attempt
  /// and scrub visit, so ECC writeback and golden refetch land in the same
  /// broken cell and cannot heal it. This is the one fault class that
  /// deterministically exhausts the ladder (rung 5, FaultEscalationError) —
  /// what the quarantine tests and the server campaign use to trip the
  /// circuit breaker.
  struct StuckByte {
    std::size_t offset = 0;
    std::uint8_t and_mask = 0xFF;
    std::uint8_t or_mask = 0;
  };
  void set_stuck_bytes(std::vector<StuckByte> faults) { stuck_ = std::move(faults); }
  /// Lift the stuck cells (the campaign's "field repair"); the next scrub or
  /// refill refetches clean bytes and the block recovers.
  void clear_stuck_bytes() { stuck_.clear(); }
  const std::vector<StuckByte>& stuck_bytes() const { return stuck_; }

  /// Zero stats() and cache_stats() (a campaign's measurement-window reset).
  /// Cache contents, CLB, store, and the fault log are untouched.
  void reset_stats();

  const core::CompressedImage& store() const { return store_; }
  const RecoveryStats& stats() const { return stats_; }
  const std::vector<FaultReport>& fault_log() const { return fault_log_; }
  const CacheStats& cache_stats() const { return cache_->stats(); }

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t last_use = 0;
    std::vector<std::uint8_t> bytes;
  };
  /// One cached LAT entry. Stored as plain bytes so the injector can attack
  /// it; `parity` covers every preceding byte (even parity).
  struct ClbEntry {
    std::uint32_t block = 0;
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
    std::uint8_t valid = 0;
    std::uint8_t parity = 0;
    std::uint8_t pad[2] = {0, 0};
  };

  Line& lookup(std::uint32_t address);
  /// The recovery ladder. Fills `out` with verified bytes or throws.
  void refill(std::size_t block, std::vector<std::uint8_t>& out);
  /// One decode attempt against the current store contents. Returns false
  /// on a typed decode error or a CRC mismatch.
  bool try_decode(std::size_t block, std::vector<std::uint8_t>& out);
  /// Consult (and heal) the CLB for `block`; returns after the entry agrees
  /// with the stored LAT.
  void clb_access(std::size_t block);
  /// Re-assert every StuckByte onto the store payload (no-op when none).
  void apply_stuck_bytes();
  /// Copy one block's payload, ECC and LAT words back from the golden copy.
  void refetch_block(std::size_t block);
  static std::uint8_t entry_parity(const ClbEntry& entry);

  Options options_;
  core::CompressedImage golden_;  // pristine backing copy (never mutated)
  core::CompressedImage store_;   // fault-prone store
  std::unique_ptr<core::BlockDecompressor> decompressor_;  // bound to store_
  /// Original block index -> physical slot (identity without a layout
  /// section). Only the address path remaps; the ladder, CLB, ECC and
  /// scrubber all live in slot space.
  std::vector<std::uint32_t> remap_;
  core::DecodeScratch scratch_;  // refill/scrub arenas, reused every decode
  std::vector<std::uint32_t> golden_crc_;  // per-block CRC of decompressed bytes
  std::unique_ptr<ICache> cache_;
  std::vector<Line> lines_;
  std::uint32_t line_bytes_ = 0;
  std::uint32_t sets_ = 0;
  std::uint32_t ways_ = 0;
  std::uint64_t clock_ = 0;
  std::vector<ClbEntry> clb_;
  std::size_t clb_cursor_ = 0;  // round-robin insertion
  std::vector<std::uint8_t> bus_noise_;
  std::vector<StuckByte> stuck_;
  std::size_t scrub_cursor_ = 0;  // invariantly < block_count() (see scrub())
  std::vector<std::uint32_t> scrub_order_;  // custom sweep order; empty = ascending
  RecoveryStats stats_;
  std::vector<FaultReport> fault_log_;
};

}  // namespace ccomp::memsys
