// Frequency counting and information-theoretic helpers.
//
// Used by the stream-division optimizer (bit correlation / entropy), the
// Huffman builders, and the experiment reports.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ccomp {

/// Frequency histogram over a fixed symbol alphabet [0, size).
class Histogram {
 public:
  explicit Histogram(std::size_t alphabet_size) : counts_(alphabet_size, 0) {}

  void add(std::size_t symbol, std::uint64_t n = 1) { counts_.at(symbol) += n; }

  std::uint64_t count(std::size_t symbol) const { return counts_.at(symbol); }
  std::uint64_t total() const;
  std::size_t alphabet_size() const { return counts_.size(); }
  std::span<const std::uint64_t> counts() const { return counts_; }

  /// Shannon entropy in bits per symbol (0 for an empty histogram).
  double entropy_bits() const;

  /// Number of symbols with nonzero count.
  std::size_t distinct() const;

 private:
  std::vector<std::uint64_t> counts_;
};

/// Shannon entropy (bits/symbol) of an arbitrary count vector.
double entropy_bits(std::span<const std::uint64_t> counts);

/// Entropy of a Bernoulli(p) source, in bits. p outside (0,1) yields 0.
double binary_entropy(double p);

/// Pearson correlation between two binary (0/1) sequences of equal length.
/// Returns 0 when either sequence is constant.
double binary_correlation(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// Pairwise |correlation| matrix between bit positions of 32-bit words:
/// result[i*32+j] = |corr(bit_i, bit_j)| over all words.
/// Bit position 0 is the least significant bit.
std::vector<double> bit_correlation_matrix(std::span<const std::uint32_t> words);

/// Empirical per-bit-position probability of a 1, for 32-bit words.
std::vector<double> bit_one_probability(std::span<const std::uint32_t> words);

}  // namespace ccomp
