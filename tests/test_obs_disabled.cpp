// This translation unit is compiled with CCOMP_OBS_DISABLE (see
// tests/CMakeLists.txt) — the configuration cmake -DCCOMP_OBS=OFF applies
// to the whole tree. The macros must still parse their arguments (so a
// disabled build catches the same typos) but never evaluate them: no
// counts, no clock reads, no statics.
#include "obs/obs.h"

#include <gtest/gtest.h>

namespace ccomp::obs {
namespace {

TEST(ObsDisabled, MacrosDoNotEvaluateArguments) {
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return 1;
  };
  CCOMP_COUNT("test.disabled.count", touch());
  CCOMP_GAUGE_SET("test.disabled.gauge", touch());
  CCOMP_GAUGE_ADD("test.disabled.gauge", touch());
  CCOMP_HIST("test.disabled.hist", touch());
  {
    CCOMP_SPAN("test.disabled.span");
    CCOMP_TIMER("test.disabled.timer");
  }
  EXPECT_EQ(evaluations, 0);
}

TEST(ObsDisabled, RegistryStaysLinkedAndEmptyOfDisabledSeries) {
  // The registry API itself remains available in disabled builds (exporters
  // and CLIs still link); only the macro instrumentation is compiled out.
  const Snapshot snap = Registry::instance().snapshot();
  for (const CounterValue& c : snap.counters)
    EXPECT_EQ(c.name.find("test.disabled."), std::string::npos) << c.name;
}

}  // namespace
}  // namespace ccomp::obs
