// SAMC/x86 with field-level stream subdivision — the extension the paper
// sketches in Sec. 5: "A different stream subdivision working with
// individual fields and not with whole bytes might improve compression,
// but on the other hand it would complicate the decompressor's logic."
//
// Instead of one byte-granular Markov model over the raw instruction
// stream, three models are trained on the paper's three Pentium streams
// (prefix+opcode bytes / ModRM+SIB bytes / displacement+immediate bytes).
// Each cache block is coded with a single arithmetic coder, interleaving
// the three models in a fixed order: all opcode bytes, then all ModRM
// bytes, then all immediates. The decompressor is indeed more complex — it
// re-parses instruction structure on the fly (prefix runs, 0F escapes,
// ModRM/SIB addressing forms) to know which model feeds the next bit —
// exactly the complication the paper predicted. Blocks are
// instruction-aligned, as in SADC/x86.
#pragma once

#include <memory>

#include "coding/markov.h"
#include "core/codec.h"

namespace ccomp::samc {

struct SamcX86SplitOptions {
  std::uint32_t block_size = 32;
  /// Inter-byte context within each stream's model.
  unsigned context_bits = 1;
  /// Independent entropy streams per block (1..16). A block's instructions
  /// are partitioned into K contiguous chunks; each chunk is a
  /// self-contained mini-stream (its own 8-bit instruction count plus the
  /// opcode/ModRM/immediate phases) behind the core/streams.h frame, so a
  /// decoder can attach any chunk without touching the others. K = 1 keeps
  /// the legacy frameless format byte-identical.
  unsigned entropy_streams = 1;
};

class SamcX86SplitCodec final : public core::BlockCodec {
 public:
  explicit SamcX86SplitCodec(SamcX86SplitOptions options = {});

  std::string_view name() const override { return "SAMC-split"; }
  core::CompressedImage compress(std::span<const std::uint8_t> code) const override;
  std::unique_ptr<core::BlockDecompressor> make_decompressor(
      const core::CompressedImage& image) const override;

 private:
  SamcX86SplitOptions options_;
};

}  // namespace ccomp::samc
