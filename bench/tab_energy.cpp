// Table T-E: fetch-energy analysis. The paper's introduction motivates code
// compression with "significant savings in terms of cost, size, weight and
// power consumption"; compressed refills move fewer bytes over the
// power-hungry off-chip bus, at the price of decoder switching energy.
#include <cstdio>
#include <string>
#include <utility>

#include "analysis/certificate.h"
#include "bench_common.h"
#include "isa/mips/mips.h"
#include "memsys/sim.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_energy", argc, argv);
  std::printf("Table T-E: fetch energy of the compressed memory system (scale=%.2f)\n\n",
              scale);

  std::printf("%-10s %8s | %12s %12s %8s | %12s %8s\n", "benchmark", "ratio",
              "base nJ/f", "SAMC nJ/f", "saving", "SADC nJ/f", "saving");
  for (const char* name : {"compress", "go", "swim", "vortex"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto prog = workload::generate_mips_program(p);
    const auto code = mips::words_to_bytes(prog.words);
    workload::TraceOptions topt;
    topt.length = 400000;
    const auto trace =
        workload::generate_trace(p, prog.function_starts, prog.words.size(), topt);

    const auto samc_image = samc::SamcCodec(samc::mips_defaults()).compress(code);
    const auto sadc_image = sadc::SadcMipsCodec().compress(code);

    memsys::SimConfig config;
    config.cache = {4 * 1024, 32, 2};
    const auto base = memsys::simulate_uncompressed(config, trace);
    const auto samc_run = memsys::simulate_compressed(config, trace, samc_image);
    const auto sadc_run = memsys::simulate_compressed(config, trace, sadc_image);

    std::printf("%-10s %8.3f | %12.4f %12.4f %7.1f%% | %12.4f %7.1f%%\n", p.name,
                sadc_image.sizes().ratio(), base.energy_per_fetch_nj(),
                samc_run.energy_per_fetch_nj(),
                100.0 * (1.0 - samc_run.energy_per_fetch_nj() / base.energy_per_fetch_nj()),
                sadc_run.energy_per_fetch_nj(),
                100.0 * (1.0 - sadc_run.energy_per_fetch_nj() / base.energy_per_fetch_nj()));
    json.add(p.name, "base_energy_per_fetch", base.energy_per_fetch_nj(), "nJ");
    json.add(p.name, "samc_energy_per_fetch", samc_run.energy_per_fetch_nj(), "nJ");
    json.add(p.name, "sadc_energy_per_fetch", sadc_run.energy_per_fetch_nj(), "nJ");
    // Certified worst-case refill cycles for each image (decode
    // certificate fed through the same refill calibration): the energy
    // means above come from one trace, the WCET bound holds for any trace.
    for (const auto& [codec, img] : {std::pair<const char*, const core::CompressedImage&>{
                                         "samc", samc_image},
                                     {"sadc", sadc_image}}) {
      const analysis::DecodeCertificate cert = analysis::certify(img);
      json.add(p.name, std::string(codec) + "_certified_wcet_cycles",
               static_cast<double>(analysis::certified_block_cycles(
                   cert, config.refill.memory_latency, config.refill.cycles_per_byte,
                   config.refill.decode_startup, config.refill.decode_bits_per_cycle)),
               "cycles");
    }
    std::fflush(stdout);
  }
  std::printf("\nCompressed refills transfer ~half the bytes; whether that nets a\n"
              "saving depends on decode energy and CLB-miss traffic — both shown\n"
              "in the model (src/memsys/sim.h EnergyModel).\n");
  return 0;
}
