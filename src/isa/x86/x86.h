// IA-32 (Pentium Pro era) instruction-length decoder and stream splitter.
//
// The paper's Pentium experiments divide code into three byte-aligned
// streams: opcode bytes (including prefixes), ModRM+SIB bytes, and
// immediate+displacement bytes. Splitting requires knowing each
// instruction's layout, which for x86 means a real length decoder:
// prefixes, one- and two-byte opcodes, ModRM/SIB addressing forms, and
// per-opcode immediate sizes. This module implements that decoder for the
// integer subset of IA-32 in 32-bit mode (16-bit address-size override is
// rejected; nothing in the workload generator emits it).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/error.h"

namespace ccomp::x86 {

/// Byte-level layout of one instruction.
struct InstrLayout {
  std::uint8_t total = 0;       // full instruction length in bytes
  std::uint8_t prefix_len = 0;  // legacy prefixes (lock/rep/66/seg)
  std::uint8_t opcode_len = 0;  // 1 or 2 (0F xx)
  std::uint8_t modrm_len = 0;   // ModRM byte + optional SIB byte (0..2)
  std::uint8_t disp_len = 0;    // 0,1,2,4
  std::uint8_t imm_len = 0;     // 0,1,2,3,4,6
};

/// Decode the layout of the instruction starting at data[0].
/// Throws DecodeError on unsupported or truncated encodings.
InstrLayout decode_layout(std::span<const std::uint8_t> data);

/// Walk a code buffer instruction by instruction.
/// Throws DecodeError if any instruction fails to parse.
std::vector<InstrLayout> decode_all(std::span<const std::uint8_t> code);

/// The paper's three Pentium streams plus the layout list needed to invert
/// the split. Stream order within each instruction: prefixes+opcode ->
/// opcode stream; modrm+sib -> modrm stream; disp then imm -> imm stream.
struct StreamSplit {
  std::vector<std::uint8_t> opcode;
  std::vector<std::uint8_t> modrm;
  std::vector<std::uint8_t> imm;  // displacement bytes then immediate bytes
  std::vector<InstrLayout> layouts;
};

StreamSplit split_streams(std::span<const std::uint8_t> code);

/// Exact inverse of split_streams.
std::vector<std::uint8_t> merge_streams(const StreamSplit& split);

/// Stream-wise reassembly support (used by the SADC/x86 decompressor, which
/// holds the opcode bytes but must learn displacement/immediate lengths as
/// it consumes the ModRM stream): attributes derivable from the
/// prefix+opcode byte group alone.
struct OpcodeClass {
  bool has_modrm = false;
  bool group3 = false;            // F6/F7: immediate present iff modrm.reg <= 1
  unsigned imm_bytes = 0;         // fixed immediate bytes (operand size applied)
  unsigned group3_imm_bytes = 0;  // extra immediate bytes when modrm.reg <= 1
};
OpcodeClass classify_opcode(std::span<const std::uint8_t> opcode_bytes);

/// Is `byte` a legacy prefix (lock/rep/seg/operand-size)?
bool is_prefix_byte(std::uint8_t byte);

/// Is `byte` the two-byte-opcode escape (0F)?
inline bool is_escape_byte(std::uint8_t byte) { return byte == 0x0F; }

/// Whether a SIB byte follows this ModRM byte (32-bit addressing).
bool modrm_has_sib(std::uint8_t modrm);

/// Disassemble the instruction at data[0] (must parse under decode_layout).
/// Covers the integer subset this library generates; anything else renders
/// as raw "db" bytes rather than failing.
std::string disassemble(std::span<const std::uint8_t> data);

/// Disassemble a whole buffer with addresses.
std::string disassemble_program(std::span<const std::uint8_t> code,
                                std::uint32_t base_address = 0);

/// Displacement bytes implied by a ModRM (+SIB, pass 0 when absent) pair.
unsigned modrm_disp_bytes(std::uint8_t modrm, std::uint8_t sib);

/// Minimal IA-32 assembler used by the synthetic workload generator. Emits
/// only encodings decode_layout() understands; the generator/decoder pair is
/// round-trip tested.
class Assembler {
 public:
  enum Reg : std::uint8_t { EAX = 0, ECX, EDX, EBX, ESP, EBP, ESI, EDI };
  // ALU /r opcode bases (op r32, r/m32 form = base + 3).
  enum Alu : std::uint8_t { ADD = 0x00, OR = 0x08, ADC = 0x10, SBB = 0x18,
                            AND = 0x20, SUB = 0x28, XOR = 0x30, CMP = 0x38 };

  const std::vector<std::uint8_t>& code() const { return code_; }
  std::vector<std::uint8_t> take() { return std::move(code_); }
  std::size_t size() const { return code_.size(); }

  void mov_r_imm32(Reg r, std::uint32_t imm);              // B8+r id
  void mov_r_rm(Reg r, Reg base, std::int32_t disp);       // 8B /r [base+disp]
  void mov_rm_r(Reg base, std::int32_t disp, Reg r);       // 89 /r
  void mov_r_r(Reg dst, Reg src);                          // 89 /r (reg form)
  void lea(Reg r, Reg base, std::int32_t disp);            // 8D /r
  void alu_r_r(Alu op, Reg dst, Reg src);                  // op r/m32, r32
  void alu_r_rm(Alu op, Reg r, Reg base, std::int32_t disp);
  void alu_r_imm(Alu op, Reg r, std::int32_t imm);         // 83 /op ib or 81 /op id
  void imul_r_r(Reg dst, Reg src);                         // 0F AF /r
  void shift_r_imm(bool right, Reg r, std::uint8_t count); // C1 /4 or /5 ib
  void test_r_r(Reg a, Reg b);                             // 85 /r
  void push_r(Reg r);                                      // 50+r
  void pop_r(Reg r);                                       // 58+r
  void push_imm8(std::int8_t imm);                         // 6A ib
  void inc_r(Reg r);                                       // 40+r
  void dec_r(Reg r);                                       // 48+r
  void jcc8(std::uint8_t cond, std::int8_t rel);           // 70+cond cb
  void jcc32(std::uint8_t cond, std::int32_t rel);         // 0F 80+cond cd
  void jmp8(std::int8_t rel);                              // EB cb
  void jmp32(std::int32_t rel);                            // E9 cd
  void call_rel32(std::int32_t rel);                       // E8 cd
  void ret();                                              // C3
  void leave();                                            // C9
  void nop();                                              // 90
  void movzx_r_rm8(Reg r, Reg base, std::int32_t disp);    // 0F B6 /r
  void setcc(std::uint8_t cond, Reg r);                    // 0F 90+cond /r (r/m8)
  void cmov(std::uint8_t cond, Reg dst, Reg src);          // 0F 40+cond /r
  void xchg_r_r(Reg a, Reg b);                             // 87 /r
  // x87 floating point (what Pentium-era SPECfp code is made of).
  void fld_mem(Reg base, std::int32_t disp);   // D9 /0  fld dword [..]
  void fstp_mem(Reg base, std::int32_t disp);  // D9 /3  fstp dword [..]
  void fadd_mem(Reg base, std::int32_t disp);  // D8 /0
  void fmul_mem(Reg base, std::int32_t disp);  // D8 /1
  void faddp();                                // DE C1
  void fmulp();                                // DE C9

  /// `.byte` directive: append raw, already-encoded instruction bytes
  /// (used when duplicating a previously assembled region).
  void db(std::span<const std::uint8_t> bytes);

 private:
  void modrm_mem(std::uint8_t reg_field, Reg base, std::int32_t disp);
  void emit8(std::uint8_t b) { code_.push_back(b); }
  void emit32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) emit8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  std::vector<std::uint8_t> code_;
};

}  // namespace ccomp::x86
