#include "coding/ppm.h"

#include <gtest/gtest.h>

#include "baseline/filecodecs.h"
#include "isa/mips/mips.h"
#include "support/error.h"
#include "support/rng.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace ccomp::coding {
namespace {

void round_trip(std::span<const std::uint8_t> data, const PpmOptions& opt = {}) {
  const auto compressed = ppm_compress(data, opt);
  const auto restored = ppm_decompress(compressed, data.size(), opt);
  ASSERT_EQ(restored.size(), data.size());
  EXPECT_TRUE(std::equal(restored.begin(), restored.end(), data.begin()));
}

TEST(Ppm, EmptyAndTinyInputs) {
  round_trip({});
  const std::uint8_t one[] = {0x42};
  round_trip(one);
}

TEST(Ppm, RandomDataRoundTrips) {
  Rng rng(91);
  std::vector<std::uint8_t> data(50000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
  round_trip(data);
}

TEST(Ppm, TextCompressesHard) {
  std::vector<std::uint8_t> data;
  const char* phrase = "context modelling achieves the best compression ratios. ";
  for (int i = 0; i < 800; ++i)
    for (const char* p = phrase; *p; ++p) data.push_back(static_cast<std::uint8_t>(*p));
  const auto compressed = ppm_compress(data);
  EXPECT_LT(static_cast<double>(compressed.size()) / static_cast<double>(data.size()), 0.15);
  round_trip(data);
}

TEST(Ppm, BeatsUnixCompressOnGeneratedCode) {
  // The paper's Sec. 1 claim: finite-context models achieve top-tier ratios
  // (at a memory cost file compressors do not pay). Our synthetic programs
  // are deliberately clone-heavy, which hands LZ77's unbounded match window
  // an edge over any bounded-order context model, so the bound we assert is
  // against the bounded-window LZW of compress(1).
  workload::Profile p = *workload::find_profile("gcc");
  p.code_kb = 96;
  const auto code = mips::words_to_bytes(workload::generate_mips(p));
  PpmOptions opt;
  opt.order = 4;
  const auto ppm = ppm_compress(code, opt);
  const double r_ppm = static_cast<double>(ppm.size()) / static_cast<double>(code.size());
  const double r_lzw = baseline::unix_compress(code).ratio();
  EXPECT_LT(r_ppm, r_lzw);
  round_trip(code, opt);
}

TEST(Ppm, ModelMemoryIsLarge) {
  // ...and this is why the paper rules it out for cache-line decompression.
  EXPECT_GE(ppm_model_bytes(), std::size_t{1} << 23);  // >= 8 MiB by default
  PpmOptions small;
  small.order = 0;
  small.hash_bits = 10;
  EXPECT_EQ(ppm_model_bytes(small), 2048u);  // one 2^10-slot table of 2-byte probs
}

TEST(Ppm, SmallerModelsCompressWorse) {
  workload::Profile p = *workload::find_profile("perl");
  p.code_kb = 48;
  const auto code = mips::words_to_bytes(workload::generate_mips(p));
  PpmOptions big;
  PpmOptions small;
  small.hash_bits = 12;
  const auto r_big = ppm_compress(code, big).size();
  const auto r_small = ppm_compress(code, small).size();
  EXPECT_LT(r_big, r_small);
  round_trip(code, small);
}

TEST(Ppm, HigherOrderHelpsOnCode) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = 48;
  const auto code = mips::words_to_bytes(workload::generate_mips(p));
  PpmOptions o0;
  o0.order = 0;
  PpmOptions o2;
  o2.order = 2;
  EXPECT_LT(ppm_compress(code, o2).size(), ppm_compress(code, o0).size());
}

TEST(Ppm, BadOptionsThrow) {
  const std::vector<std::uint8_t> data(16, 0);
  PpmOptions bad;
  bad.hash_bits = 40;
  EXPECT_THROW(ppm_compress(data, bad), ConfigError);
  bad = {};
  bad.adapt_shift = 0;
  EXPECT_THROW(ppm_compress(data, bad), ConfigError);
  bad = {};
  bad.order = 99;
  EXPECT_THROW(ppm_compress(data, bad), ConfigError);
}

class PpmSweep : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(PpmSweep, RoundTripsAcrossOrdersAndTableSizes) {
  const auto [order, hash_bits] = GetParam();
  PpmOptions opt;
  opt.order = order;
  opt.hash_bits = hash_bits;
  Rng rng(order * 131 + hash_bits);
  std::vector<std::uint8_t> data(20000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.pick_skewed(64, 0.85));
  round_trip(data, opt);
}

INSTANTIATE_TEST_SUITE_P(OrdersAndTables, PpmSweep,
                         ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u),
                                            ::testing::Values(12u, 16u, 22u)));

}  // namespace
}  // namespace ccomp::coding
