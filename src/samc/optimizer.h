// Stream-division optimizer (paper Sec. 3).
//
// "Our program combines bits with high correlation to streams and
//  calculates their entropies. It then attempts to exchange some bits
//  between streams randomly and recalculates the entropies. If the new
//  average entropy is lower it accepts this step, otherwise it tries a
//  different combination."
//
// We reproduce that search: a correlation-seeded initial grouping followed
// by randomized bit swaps between streams, accepting a swap when the
// model-estimated compressed size (payload bits + probability-table bits,
// measured on a training sample) decreases.
//
// Candidate swaps are evaluated in speculative batches on the shared thread
// pool (support/parallel.h); the swap sequence is precomputed from the seed
// and acceptance scans each batch in order, so the returned division is
// bit-identical to the serial hill climb at any thread count.
#pragma once

#include <cstdint>
#include <span>

#include "coding/markov.h"

namespace ccomp::samc {

struct OptimizerOptions {
  unsigned stream_count = 4;
  unsigned swap_attempts = 150;   // randomized exchange steps
  std::size_t sample_words = 16384;  // evaluate on a prefix sample for speed
  std::size_t block_words = 8;       // training resets, as compression will
  unsigned context_bits = 1;
  std::uint64_t seed = 0x0D15EA5Eull;
};

/// Total cost (in bits) of compressing `words` under a division: model
/// cross-entropy plus 8x the probability-table bytes.
double division_cost_bits(const coding::StreamDivision& division,
                          std::span<const std::uint32_t> words,
                          unsigned context_bits, std::size_t block_words);

/// Run the paper's randomized search. `words` should be (a sample of) the
/// subject program.
coding::StreamDivision optimize_division(std::span<const std::uint32_t> words,
                                         const OptimizerOptions& options = {});

}  // namespace ccomp::samc
