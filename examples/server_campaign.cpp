// server_campaign — concurrent fault campaign over the image-serving layer.
//
// Where fault_campaign attacks one single-threaded SelfHealingMemorySystem,
// this campaign attacks a whole ccomp::server::ImageServer: three codecs
// loaded at once, T reader threads replaying seeded traces, a fault-injector
// thread attacking every store surface through with_store(), a swapper
// thread alternating doomed and legitimate hot-swaps, and the background
// scrubber sweeping underneath it all. Three phases:
//
//   herd        thundering-herd misses: per round, every reader fetches the
//               same cold block while a synthetic decode delay holds the
//               leader in the decoder — misses must coalesce, not duplicate.
//   chaos       seeded faults (payload / LAT / ECC / CLB / bus) land while
//               readers replay traces and hot-swaps churn the epoch; every
//               served byte is compared against the pristine program.
//   quarantine  a stuck-at cell defeats the whole recovery ladder until the
//               circuit breaker trips; golden fallback serves (degraded),
//               then the cell is repaired and a probe lifts the quarantine.
//
// A served byte that differs from the golden program without a thrown error
// is silent corruption and fails the campaign. Gates (any miss = exit 1):
// zero silent corruptions, herd coalescing ratio above --min-coalescing-
// ratio, at least one tripped-then-recovered quarantine under
// --require-recovery, and p99 lookup latency under --max-p99-ms.
//
//   server_campaign [--threads=T] [--faults=N] [--seed=S] [--kb=N]
//                   [--json=path] [--min-coalescing-ratio=R]
//                   [--require-recovery] [--max-p99-ms=MS] [--layout]
//
// --layout swaps the SAMC image for a profile-guided tiered build (hot raw /
// warm bytehuff-lite / cold SAMC slots plus a trace-trained predictor), so
// the server's async prefetch worker races the injector, swapper, and
// scrubber for the whole campaign.
//
// Exit status: 0 = all gates met, 1 = gate failure, 2 = usage error.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/bytehuff.h"
#include "core/mapped.h"
#include "isa/mips/mips.h"
#include "layout/layout.h"
#include "memsys/selfheal.h"
#include "obs/obs.h"
#include "obs_flags.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "server/server.h"
#include "support/error.h"
#include "support/faultinject.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/trace.h"

namespace {

using namespace ccomp;

struct Config {
  std::uint32_t threads = 8;
  std::uint64_t faults = 10000;
  std::uint64_t seed = 20260808;
  std::uint32_t kb = 4;
  double min_coalescing_ratio = -1.0;  // < 0: report only, don't gate
  bool require_recovery = false;
  double max_p99_ms = -1.0;  // < 0: report only, don't gate
  /// Replace the SAMC image with a profile-guided tiered build (hot/warm/
  /// cold slots + trace-trained predictor) so the prefetch worker races the
  /// injector, swapper, and scrubber throughout the campaign.
  bool layout = false;
  const char* json_path = nullptr;
};

struct Images {
  std::vector<std::string> names;
  std::vector<std::unique_ptr<core::BlockCodec>> codecs;
  std::vector<core::CompressedImage> images;
  // golden[i][b] = pristine decompressed block b of image i.
  std::vector<std::vector<std::vector<std::uint8_t>>> golden;
};

Images build_images(std::uint32_t kb, bool layout) {
  workload::Profile profile = *workload::find_profile("go");
  profile.code_kb = kb;
  const workload::MipsProgram prog = workload::generate_mips_program(profile);
  const std::vector<std::uint8_t> code = mips::words_to_bytes(prog.words);

  Images out;
  // "huffmap" is served from an mmap'd page-aligned (v3.1) container: its
  // golden copy inside the server is a zero-copy view over the mapping, so
  // the campaign races the lock-free hit path, the injector (which attacks
  // the materialized self-healing store), and hot-swaps against mapped
  // memory too.
  out.names = {"samc", "sadc", "huff", "huffmap"};
  out.codecs.push_back(std::make_unique<samc::SamcCodec>(samc::mips_defaults()));
  out.codecs.push_back(std::make_unique<sadc::SadcMipsCodec>());
  out.codecs.push_back(std::make_unique<baseline::ByteHuffmanCodec>());
  out.codecs.push_back(std::make_unique<baseline::ByteHuffmanCodec>());
  for (std::size_t i = 0; i < out.codecs.size(); ++i) {
    const auto& codec = out.codecs[i];
    if (layout && i == 0) {
      // Profile-guided SAMC build: the fetch trace trains the clustering,
      // the tier map, and the prefetch predictor the server runs on.
      workload::TraceOptions topt;
      topt.length = 200'000;
      const auto trace =
          workload::generate_trace(profile, prog.function_starts, prog.words.size(), topt);
      const std::uint32_t block_size = samc::mips_defaults().block_size;
      const std::size_t blocks = (code.size() + block_size - 1) / block_size;
      const layout::AccessProfile access =
          layout::AccessProfile::from_trace(trace, block_size, blocks);
      layout::PlacementPlan plan = layout::optimize_layout(access, code.size(), block_size,
                                                           layout::LayoutOptions{});
      out.images.push_back(layout::build_tiered_image(*codec, code, std::move(plan)));
    } else {
      out.images.push_back(codec->compress(code));
    }
    const core::CompressedImage& image = out.images.back();
    // Slot-indexed, tier-aware decode — the same space the server serves
    // (identical to the inner decompressor for plain images).
    const auto dec = layout::make_tier_decompressor(*codec, image);
    auto& blocks = out.golden.emplace_back();
    for (std::size_t b = 0; b < image.block_count(); ++b) blocks.push_back(dec->block(b));
  }
  return out;
}

/// Campaign-global tallies. `silent` is the one that must stay zero: a fetch
/// whose bytes differ from the pristine program without a thrown error.
struct Tally {
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> silent{0};
  std::atomic<std::uint64_t> degraded{0};   // golden fallback serves observed
  std::atomic<std::uint64_t> escalated{0};  // typed errors surfaced to a reader
  std::atomic<std::uint64_t> faults{0};     // injected fault events
  std::atomic<std::uint64_t> swaps_tried{0};
};

/// One verified fetch: wrong bytes with no error count as silent corruption.
void checked_fetch(server::ImageServer& srv, const Images& imgs, std::size_t image,
                   std::uint32_t block, Tally& tally) {
  tally.lookups.fetch_add(1, std::memory_order_relaxed);
  try {
    const server::FetchResult r = srv.fetch(imgs.names[image], block);
    if (r.degraded) tally.degraded.fetch_add(1, std::memory_order_relaxed);
    if (*r.bytes != imgs.golden[image][block])
      tally.silent.fetch_add(1, std::memory_order_relaxed);
  } catch (const Error&) {
    // FaultEscalationError, QuarantinedError, or any other typed failure:
    // the fault was surfaced, not silently served.
    tally.escalated.fetch_add(1, std::memory_order_relaxed);
  }
}

// --- phase: thundering herd ----------------------------------------------

struct HerdResult {
  std::uint64_t rounds = 0;
  std::uint64_t decodes = 0;
  std::uint64_t joined = 0;  // coalesced joins + hits on the leader's entry
  double ratio = 0.0;        // joined / decodes — > 1 means coalescing works
};

HerdResult run_herd(server::ImageServer& srv, const Images& imgs, const Config& config,
                    Tally& tally) {
  HerdResult herd;
  herd.rounds = 16;
  const std::uint64_t decodes0 = srv.stats().decodes;
  const std::uint64_t joined0 = srv.cache_stats().coalesced + srv.cache_stats().hits;

  srv.set_decode_delay(std::chrono::milliseconds(2));
  for (std::uint64_t round = 0; round < herd.rounds; ++round) {
    const std::size_t image = round % imgs.images.size();
    const auto block = static_cast<std::uint32_t>(round % imgs.images[image].block_count());
    srv.flush_cache();

    std::atomic<std::uint32_t> ready{0};
    std::vector<std::thread> threads;
    threads.reserve(config.threads);
    for (std::uint32_t t = 0; t < config.threads; ++t) {
      threads.emplace_back([&] {
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (ready.load(std::memory_order_acquire) < config.threads) std::this_thread::yield();
        checked_fetch(srv, imgs, image, block, tally);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  srv.set_decode_delay(std::chrono::microseconds(0));

  herd.decodes = srv.stats().decodes - decodes0;
  herd.joined = srv.cache_stats().coalesced + srv.cache_stats().hits - joined0;
  herd.ratio = herd.decodes == 0 ? 0.0
                                 : static_cast<double>(herd.joined) /
                                       static_cast<double>(herd.decodes);
  return herd;
}

// --- phase: concurrent chaos ---------------------------------------------

void run_chaos(server::ImageServer& srv, const Images& imgs, const Config& config, Tally& tally) {
  std::atomic<bool> done{false};
  srv.start_scrubber(std::chrono::milliseconds(2), 64);

  // Injector: one seeded fault per step through with_store(), rotating
  // surface and physical model; a cache flush every few steps forces the
  // readers back through the faulted store instead of the clean cache.
  std::thread injector([&] {
    fault::FaultInjector inj(config.seed ^ 0x1f0f1f0f1f0f1f0fULL);
    const fault::Model models[] = {fault::Model::kSingleBit, fault::Model::kMultiBit,
                                   fault::Model::kStuckAt0, fault::Model::kStuckAt1,
                                   fault::Model::kBurst};
    for (std::uint64_t step = 0; step < config.faults; ++step) {
      const std::size_t image = inj.rng().next_below(imgs.images.size());
      const std::size_t surface = inj.rng().next_below(5);
      fault::FaultSpec spec;
      spec.model = models[step % std::size(models)];
      srv.with_store(imgs.names[image], [&](memsys::SelfHealingMemorySystem& heal) {
        switch (surface) {
          case 0: inj.inject(heal.store_payload(), spec); break;
          case 1: inj.inject(heal.store_lat_bytes(), spec); break;
          case 2: {
            if (!heal.store_ecc().empty()) inj.inject(heal.store_ecc(), spec);
            else inj.inject(heal.store_payload(), spec);
            break;
          }
          case 3: {
            auto clb = heal.clb_bytes();
            if (!clb.empty()) inj.inject(clb, spec);
            else inj.inject(heal.store_payload(), spec);
            break;
          }
          default: inj.inject(heal.bus_buffer(), spec); break;
        }
      });
      tally.faults.fetch_add(1, std::memory_order_relaxed);
      if (step % 8 == 7) srv.flush_cache();
      if (step % 512 == 511) srv.scrub_once(32);
      std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
  });

  // Swapper: a doomed replacement (non-monotone LAT) that must be rejected
  // with the old epoch still serving, then a legitimate same-content swap
  // that must be accepted — epoch churn under full reader load.
  std::thread swapper([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (std::size_t i = 0; i < imgs.images.size(); ++i) {
        core::CompressedImage corrupt = imgs.images[i];
        auto lat = corrupt.mutable_lat_bytes();
        if (lat.size() >= 4) lat[0] = lat[1] = lat[2] = lat[3] = 0xFF;
        (void)srv.swap(imgs.names[i], *imgs.codecs[i], corrupt);
        (void)srv.swap(imgs.names[i], *imgs.codecs[i], imgs.images[i]);
        tally.swaps_tried.fetch_add(2, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Readers: seeded traces, every served byte checked against the golden
  // program until the injector has landed its full budget.
  std::vector<std::thread> readers;
  readers.reserve(config.threads);
  for (std::uint32_t t = 0; t < config.threads; ++t) {
    readers.emplace_back([&, t] {
      fault::FaultInjector trace(config.seed ^ (0xabcd0000ULL + t));
      while (!done.load(std::memory_order_acquire)) {
        const std::size_t image = trace.rng().next_below(imgs.images.size());
        const auto block = static_cast<std::uint32_t>(
            trace.rng().next_below(imgs.images[image].block_count()));
        checked_fetch(srv, imgs, image, block, tally);
      }
    });
  }

  injector.join();
  swapper.join();
  for (std::thread& t : readers) t.join();
  srv.stop_scrubber();

  // Post-chaos settle: repair every store, then sweep every block once more
  // — any fault the campaign left latent must decode clean or escalate, and
  // the final sweep must match the pristine program byte for byte.
  for (const std::string& name : imgs.names) {
    srv.with_store(name, [](memsys::SelfHealingMemorySystem& heal) { heal.repair_all(); });
  }
  srv.flush_cache();
  for (std::size_t i = 0; i < imgs.images.size(); ++i)
    for (std::uint32_t b = 0; b < imgs.images[i].block_count(); ++b)
      checked_fetch(srv, imgs, i, b, tally);
}

// --- phase: quarantine trip + recovery -----------------------------------

struct QuarantineResult {
  std::uint64_t trips = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t golden_serves = 0;
};

QuarantineResult run_quarantine(server::ImageServer& srv, const Images& imgs,
                                const server::ImageServer::Options& options, Tally& tally) {
  const std::uint64_t trips0 = srv.stats().quarantine_trips;
  const std::uint64_t recov0 = srv.stats().quarantine_recoveries;
  const std::uint64_t golden0 = srv.stats().golden_serves;

  // Wedge the first byte of block 0's payload to the complement of its
  // golden value: every rung of the ladder (ECC writeback, golden refetch)
  // restores the byte, the stuck cell re-asserts it, and the CRC gate keeps
  // failing — the one deterministic path to repeated hard failures.
  const std::string& name = imgs.names.front();
  std::size_t offset = 0;
  std::uint8_t golden_byte = 0;
  srv.with_store(name, [&](memsys::SelfHealingMemorySystem& heal) {
    const auto payload = heal.store().payload();
    const auto view = heal.store().block_payload(0);
    offset = static_cast<std::size_t>(view.data() - payload.data());
    golden_byte = view[0];
    heal.set_stuck_bytes({{offset, 0x00, static_cast<std::uint8_t>(~golden_byte)}});
  });
  srv.flush_cache();

  // Enough failing fetches to trip the breaker, plus a few quarantined
  // fetches served from the golden copy (degraded, never cached).
  for (std::uint32_t i = 0; i < options.quarantine_threshold + 3; ++i) {
    checked_fetch(srv, imgs, 0, 0, tally);
    srv.flush_cache();
  }

  // Repair the cell, then keep fetching until a probe lifts the quarantine.
  srv.with_store(name, [](memsys::SelfHealingMemorySystem& heal) {
    heal.clear_stuck_bytes();
    heal.repair_all();
  });
  for (std::uint32_t i = 0; i < options.probe_period + 2; ++i) checked_fetch(srv, imgs, 0, 0, tally);

  QuarantineResult q;
  q.trips = srv.stats().quarantine_trips - trips0;
  q.recoveries = srv.stats().quarantine_recoveries - recov0;
  q.golden_serves = srv.stats().golden_serves - golden0;
  return q;
}

// --- latency -------------------------------------------------------------

/// Percentile from the "server.lookup_ns" fixed-bucket histogram: the upper
/// bound of the first bucket whose cumulative count reaches q (the +Inf
/// bucket degrades to the last finite bound).
double lookup_percentile_ms(double q) {
  const obs::Snapshot snapshot = obs::Registry::instance().snapshot();
  for (const obs::HistogramValue& h : snapshot.histograms) {
    if (h.name != "server.lookup_ns" || h.count == 0) continue;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(h.count) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      seen += h.bucket_counts[i];
      if (seen >= target)
        return static_cast<double>(i < h.bounds.size() ? h.bounds[i] : h.bounds.back()) / 1e6;
    }
  }
  return 0.0;
}

// --- report --------------------------------------------------------------

int run(const Config& config) {
  std::printf("server campaign: %u reader thread(s), %llu fault(s), seed=%llu, %ukB/codec\n",
              config.threads, static_cast<unsigned long long>(config.faults),
              static_cast<unsigned long long>(config.seed), config.kb);

  const Images imgs = build_images(config.kb, config.layout);
  if (config.layout) {
    const core::CompressedImage& samc_img = imgs.images.front();
    const layout::PlacementPlan plan = layout::plan_from_image(samc_img);
    std::size_t hot = 0, warm = 0;
    for (const layout::Tier t : plan.tiers) {
      if (t == layout::Tier::kHot) ++hot;
      else if (t == layout::Tier::kWarm) ++warm;
    }
    std::printf("layout: tiered samc image, %zu hot / %zu warm / %zu cold block(s), "
                "predictor k=%u\n",
                hot, warm, plan.tiers.size() - hot - warm, plan.predictor_k);
  }

  server::ImageServer::Options options;
  options.cache.capacity_bytes = 1u << 20;
  options.decode_retries = 1;
  options.backoff_base = std::chrono::microseconds(20);
  options.quarantine_threshold = 2;
  options.probe_period = 4;
  options.degraded = server::DegradedPolicy::kServeGolden;
  server::ImageServer srv(options);
  for (std::size_t i = 0; i < imgs.images.size(); ++i) {
    if (imgs.names[i] == "huffmap") {
      // Round-trip through the aligned container and serve the mapping:
      // write, mmap, unlink (POSIX keeps the mapping alive). The campaign's
      // own golden copy stays owned, so the swapper can still build corrupt
      // replacements from it.
      ByteSink sink;
      core::serialize_aligned(imgs.images[i], sink);
      const std::string path = "server_campaign_huffmap.ccma";
      {
        std::ofstream file(path, std::ios::binary);
        const auto bytes = sink.view();
        file.write(reinterpret_cast<const char*>(bytes.data()),
                   static_cast<std::streamsize>(bytes.size()));
      }
      srv.load(imgs.names[i], *imgs.codecs[i], core::MappedImage::open(path));
      std::remove(path.c_str());
    } else {
      srv.load(imgs.names[i], *imgs.codecs[i], imgs.images[i]);
    }
  }

  Tally tally;
  const HerdResult herd = run_herd(srv, imgs, config, tally);
  std::printf("herd: %llu round(s), %llu decode(s), %llu joined, coalescing ratio %.2f\n",
              static_cast<unsigned long long>(herd.rounds),
              static_cast<unsigned long long>(herd.decodes),
              static_cast<unsigned long long>(herd.joined), herd.ratio);

  run_chaos(srv, imgs, config, tally);
  std::printf("chaos: %llu fault(s) injected, %llu lookup(s), %llu degraded, %llu escalated, "
              "%llu swap(s) tried\n",
              static_cast<unsigned long long>(tally.faults.load()),
              static_cast<unsigned long long>(tally.lookups.load()),
              static_cast<unsigned long long>(tally.degraded.load()),
              static_cast<unsigned long long>(tally.escalated.load()),
              static_cast<unsigned long long>(tally.swaps_tried.load()));

  const QuarantineResult quarantine = run_quarantine(srv, imgs, options, tally);
  std::printf("quarantine: %llu trip(s), %llu recovery(ies), %llu golden serve(s)\n",
              static_cast<unsigned long long>(quarantine.trips),
              static_cast<unsigned long long>(quarantine.recoveries),
              static_cast<unsigned long long>(quarantine.golden_serves));

  const std::uint64_t prefetch_issued = srv.stats().prefetch_issued;
  const std::uint64_t prefetch_hits = srv.stats().prefetch_hits;
  const std::uint64_t prefetch_waste = srv.stats().prefetch_waste;
  if (config.layout)
    std::printf("prefetch: %llu issued, %llu hit(s), %llu wasted\n",
                static_cast<unsigned long long>(prefetch_issued),
                static_cast<unsigned long long>(prefetch_hits),
                static_cast<unsigned long long>(prefetch_waste));

  const double p50_ms = lookup_percentile_ms(0.50);
  const double p99_ms = lookup_percentile_ms(0.99);
  const std::uint64_t silent = tally.silent.load();
  const std::uint64_t swaps_rejected = srv.stats().swaps_rejected;
  const std::uint64_t swaps_accepted = srv.stats().swaps_accepted;
  std::printf("latency: p50 <= %.3fms, p99 <= %.3fms (bucketed)\n", p50_ms, p99_ms);
  std::printf("swaps: %llu accepted, %llu rejected (every doomed swap must be rejected)\n",
              static_cast<unsigned long long>(swaps_accepted),
              static_cast<unsigned long long>(swaps_rejected));

  // --- gates ---
  bool ok = true;
  if (silent != 0) {
    std::printf("GATE FAILED: %llu silent corruption(s) — served bytes differed from the "
                "pristine program with no error\n",
                static_cast<unsigned long long>(silent));
    ok = false;
  }
  if (config.min_coalescing_ratio >= 0.0 && herd.ratio <= config.min_coalescing_ratio) {
    std::printf("GATE FAILED: coalescing ratio %.2f <= %.2f\n", herd.ratio,
                config.min_coalescing_ratio);
    ok = false;
  }
  if (config.require_recovery && (quarantine.trips == 0 || quarantine.recoveries == 0)) {
    std::printf("GATE FAILED: expected a tripped-then-recovered quarantine (trips=%llu, "
                "recoveries=%llu)\n",
                static_cast<unsigned long long>(quarantine.trips),
                static_cast<unsigned long long>(quarantine.recoveries));
    ok = false;
  }
  if (config.max_p99_ms >= 0.0 && p99_ms > config.max_p99_ms) {
    std::printf("GATE FAILED: p99 lookup latency %.3fms > %.3fms\n", p99_ms, config.max_p99_ms);
    ok = false;
  }
  // Swap correctness is always gated: a doomed swap that slipped through
  // would serve an unverifiable image.
  if (swaps_rejected < tally.swaps_tried.load() / 2) {
    std::printf("GATE FAILED: only %llu of %llu doomed swaps were rejected\n",
                static_cast<unsigned long long>(swaps_rejected),
                static_cast<unsigned long long>(tally.swaps_tried.load() / 2));
    ok = false;
  }
  std::printf("campaign %s: %llu lookup(s), %llu silent corruption(s)\n", ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(tally.lookups.load()),
              static_cast<unsigned long long>(silent));

  if (config.json_path != nullptr) {
    std::string json = "{\"threads\":" + std::to_string(config.threads) +
                       ",\"faults\":" + std::to_string(tally.faults.load()) +
                       ",\"seed\":" + std::to_string(config.seed) +
                       ",\"lookups\":" + std::to_string(tally.lookups.load()) +
                       ",\"silent_corruptions\":" + std::to_string(silent) +
                       ",\"degraded_serves\":" + std::to_string(tally.degraded.load()) +
                       ",\"escalated\":" + std::to_string(tally.escalated.load()) +
                       ",\"herd\":{\"decodes\":" + std::to_string(herd.decodes) +
                       ",\"joined\":" + std::to_string(herd.joined) +
                       ",\"coalescing_ratio\":" + std::to_string(herd.ratio) +
                       "},\"quarantine\":{\"trips\":" + std::to_string(quarantine.trips) +
                       ",\"recoveries\":" + std::to_string(quarantine.recoveries) +
                       ",\"golden_serves\":" + std::to_string(quarantine.golden_serves) +
                       "},\"swaps\":{\"accepted\":" + std::to_string(swaps_accepted) +
                       ",\"rejected\":" + std::to_string(swaps_rejected) +
                       "},\"prefetch\":{\"issued\":" + std::to_string(prefetch_issued) +
                       ",\"hits\":" + std::to_string(prefetch_hits) +
                       ",\"waste\":" + std::to_string(prefetch_waste) +
                       "},\"latency_ms\":{\"p50\":" + std::to_string(p50_ms) +
                       ",\"p99\":" + std::to_string(p99_ms) +
                       "},\"survived\":" + (ok ? std::string("true") : std::string("false")) +
                       "}\n";
    std::ofstream out(config.json_path, std::ios::binary);
    out << json;
    std::printf("report written to %s\n", config.json_path);
  }
  return ok ? 0 : 1;
}

void print_help(const char* prog) {
  std::printf(
      "usage: %s [--threads=T] [--faults=N] [--seed=S] [--kb=N] [--json=path]\n"
      "       %*s [--min-coalescing-ratio=R] [--require-recovery] [--max-p99-ms=MS]\n"
      "       %*s [--layout] [--metrics=path] [--trace=path]\n",
      prog, static_cast<int>(std::strlen(prog)), "", static_cast<int>(std::strlen(prog)), "");
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  examples::ObsFlags obs_flags;
  argc = examples::strip_obs_flags(argc, argv, obs_flags);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      config.threads = static_cast<std::uint32_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      config.faults = static_cast<std::uint64_t>(std::atoll(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      config.seed = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--kb=", 5) == 0) {
      config.kb = static_cast<std::uint32_t>(std::atoi(argv[i] + 5));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      config.json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--min-coalescing-ratio=", 23) == 0) {
      config.min_coalescing_ratio = std::atof(argv[i] + 23);
    } else if (std::strcmp(argv[i], "--layout") == 0) {
      config.layout = true;
    } else if (std::strcmp(argv[i], "--require-recovery") == 0) {
      config.require_recovery = true;
    } else if (std::strncmp(argv[i], "--max-p99-ms=", 13) == 0) {
      config.max_p99_ms = std::atof(argv[i] + 13);
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_help(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }
  if (config.threads == 0 || config.faults == 0) {
    std::fprintf(stderr, "--threads and --faults must be positive\n");
    return 2;
  }
  int rc = 2;
  try {
    rc = run(config);
  } catch (const ccomp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 2;
  }
  return examples::finish_obs(obs_flags, rc);
}
