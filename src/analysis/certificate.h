// ccomp::analysis — decode certificates via abstract interpretation.
//
// The static verifier (ccomp::verify) proves *structural* invariants of a
// compressed image; this pass proves *behavioral* ones. Every ccomp decoder
// is a finite automaton — the flattened Markov plan, the canonical Huffman
// tables, the SADC dictionary walk, the coder renorm loops — so its
// worst-case paths can be bounded by exhaustive exploration of the state
// graph rather than fuzzed. certify() analyzes a compiled image's decode
// artifacts and emits a DecodeCertificate: machine-checked bounds on
//
//   * compressed bits consumed per output byte and per block, maximized
//     over every reachable model state and coder renorm behavior
//     (including the K-stream frame and per-chunk coder attach/flush);
//   * Huffman/dictionary decode depth and the SADC phase-1 fuel actually
//     reachable (a subset-sum over coded expansion lengths, not just the
//     decoder's structural cap);
//   * decode termination — no reachable cycle of the model graph consumes
//     zero compressed bits (an image violating this gets Verdict::kUnbounded,
//     which loaders must treat as a hard failure);
//   * a worst-case block-decode cycle bound in the calibration of
//     memsys::RefillModel, so simulators can report certified WCET next to
//     measured means.
//
// Exploration is exhaustive below CertifyOptions::state_cap; above it the
// engine widens to an interval abstraction (per-transition worst cost x
// path length), which stays sound but marks the certificate non-exhaustive.
//
// The engine re-parses the table blobs itself, *tolerantly*: the production
// deserializers reject pathologies like zero probabilities outright, but
// the certificate must prove the consequence (a zero-bit decode cycle)
// independently rather than inherit the parser's refusal — that is what
// makes the kUnbounded verdict a proof and not an echo.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/image.h"
#include "support/serialize.h"

namespace ccomp::analysis {

/// Outcome of the certification pass.
enum class Verdict : std::uint8_t {
  /// Every bound below is proved finite and decode termination holds.
  kCertified = 0,
  /// The artifacts could not be analyzed (parse failure, malformed frame,
  /// coder attach impossible). The image is not proved decodable.
  kFailed = 1,
  /// A reachable model cycle consumes zero compressed bits, or widening
  /// could not exclude one: no finite decode-cost bound exists. Hard
  /// failure — strict loaders must refuse the image.
  kUnbounded = 2,
};

std::string_view verdict_name(Verdict verdict);

/// Machine-checked worst-case decode bounds for one image. All "max" fields
/// are sound upper bounds (never below any behavior the image can exhibit);
/// max_block_payload_bytes is exact (read from the LAT).
struct DecodeCertificate {
  Verdict verdict = Verdict::kFailed;
  /// True when the state space was explored exhaustively; false when the
  /// widening abstraction was used (bounds still sound, just looser).
  bool exhaustive = false;
  /// Proof that no reachable model cycle consumes zero compressed bits.
  bool terminates = false;
  /// Model states explored (0 when widened).
  std::uint32_t explored_states = 0;
  /// Max out-degree of any reachable model state (2 for binary machines).
  std::uint32_t max_fanout = 0;
  /// Max Huffman code length used / Markov tree depth walked per decision.
  std::uint32_t max_decode_depth = 0;
  /// Max SADC phase-1 symbol count actually reachable per block (0 for
  /// codecs without a dictionary phase).
  std::uint32_t max_phase1_fuel = 0;
  /// Max compressed bits consumed per output byte, over all reachable
  /// model states (ceiling).
  std::uint32_t max_bits_per_byte = 0;
  /// Model-level bound on compressed bits consumed by one block's payload.
  std::uint64_t max_bits_per_block = 0;
  /// Model-level bound on one block's payload bytes, coder attach/flush and
  /// the K-stream frame included.
  std::uint64_t model_block_bytes = 0;
  /// Exact largest per-block payload in this image's LAT.
  std::uint32_t max_block_payload_bytes = 0;
  /// Uncompressed bytes per block (copied from the image header; feeds the
  /// cycle bound's output term).
  std::uint32_t block_size = 0;
  /// Human-readable reasons when verdict != kCertified.
  std::vector<std::string> failures;

  bool certified() const { return verdict == Verdict::kCertified; }

  /// Container-blob (de)serialization (core::CompressedImage carries the
  /// certificate as an opaque section). Deserialize throws CorruptDataError
  /// on a malformed blob.
  void serialize(ByteSink& sink) const;
  static DecodeCertificate deserialize(ByteSource& src);

  bool operator==(const DecodeCertificate&) const = default;
};

struct CertifyOptions {
  /// Exhaustive exploration up to this many model states; larger models
  /// fall back to the widening abstraction.
  std::size_t state_cap = std::size_t{1} << 16;
};

/// Analyze `image`'s decode artifacts and emit its certificate. Never
/// throws on malformed artifacts — failures become Verdict::kFailed with
/// reasons recorded.
DecodeCertificate certify(const core::CompressedImage& image, const CertifyOptions& opts = {});

/// Certified worst-case cycles to refill one cache block, in the
/// calibration of memsys::RefillModel (latency to first byte, bus cycles
/// per compressed byte, decoder startup, decoder output bits per cycle).
/// Plain integers rather than the RefillModel struct keep this library
/// independent of memsys. Returns 0 for an uncertified certificate.
std::uint64_t certified_block_cycles(const DecodeCertificate& cert,
                                     std::uint32_t memory_latency, std::uint32_t cycles_per_byte,
                                     std::uint32_t decode_startup,
                                     std::uint32_t decode_bits_per_cycle);

}  // namespace ccomp::analysis
