// Ablation T-SD: stream subdivision. The paper states that dividing 32-bit
// instructions into four 8-bit streams is close to optimal, and describes a
// randomized bit-exchange optimizer. Compare contiguous divisions of
// several widths against the optimizer's output.
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "isa/mips/mips.h"
#include "samc/optimizer.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_streams", argc, argv);
  std::printf("Table T-SD: SAMC stream-division sensitivity (scale=%.2f)\n", scale);

  core::RatioTable table("SAMC ratio vs stream division",
                         {"2x16", "4x8", "8x4", "16x2", "optimized"});

  for (const char* name : {"gcc", "go", "perl", "vortex"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto words = workload::generate_mips(p);
    const auto code = mips::words_to_bytes(words);
    std::vector<double> row;
    for (const unsigned streams : {2u, 4u, 8u, 16u}) {
      samc::SamcOptions o = samc::mips_defaults();
      o.markov.division = coding::StreamDivision::contiguous(32, streams);
      row.push_back(samc::SamcCodec(o).compress(code).sizes().ratio());
      json.add(name, "samc_ratio_" + std::to_string(streams) + "streams", row.back(),
               "ratio");
    }
    samc::OptimizerOptions opt;
    opt.swap_attempts = 120;
    opt.sample_words = 8192;
    samc::SamcOptions o = samc::mips_defaults();
    o.markov.division = samc::optimize_division(words, opt);
    row.push_back(samc::SamcCodec(o).compress(code).sizes().ratio());
    json.add(name, "samc_ratio_optimized", row.back(), "ratio");
    table.add_row(name, row);
    std::fflush(stdout);
  }
  table.print();
  std::printf("\nPaper expectation: 4x8 close to optimal; optimizer matches or beats it.\n");
  return 0;
}
