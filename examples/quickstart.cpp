// Quickstart: compress a MIPS program with both of the paper's codecs,
// inspect the size breakdown, and decompress a single cache block — the
// operation a cache refill engine performs on every miss.
//
//   $ ./quickstart [benchmark-name]
#include <cstdio>

#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

int main(int argc, char** argv) {
  using namespace ccomp;

  // 1. Get some code. Real users pass their own text segment; here we
  //    synthesize a SPEC95-like program.
  const char* name = argc > 1 ? argv[1] : "compress";
  const workload::Profile* profile = workload::find_profile(name);
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name);
    return 1;
  }
  workload::Profile p = *profile;
  p.code_kb = 64;
  const std::vector<std::uint8_t> code = mips::words_to_bytes(workload::generate_mips(p));
  std::printf("program: %s-like, %zu bytes of MIPS text\n\n", p.name, code.size());

  // 2. Compress with SAMC (ISA-independent, Markov + arithmetic coding).
  const samc::SamcCodec samc_codec(samc::mips_defaults());
  const core::CompressedImage samc_image = samc_codec.compress(code);
  const auto ss = samc_image.sizes();
  std::printf("SAMC:  payload %7zu B + tables %5zu B + LAT %5zu B  -> ratio %.3f (%.3f with LAT)\n",
              ss.payload, ss.tables, ss.lat, ss.ratio(), ss.ratio_with_lat());

  // 3. Compress with SADC (MIPS-specific dictionary + Huffman).
  const sadc::SadcMipsCodec sadc_codec;
  const core::CompressedImage sadc_image = sadc_codec.compress(code);
  const auto ds = sadc_image.sizes();
  std::printf("SADC:  payload %7zu B + tables %5zu B + LAT %5zu B  -> ratio %.3f (%.3f with LAT)\n",
              ds.payload, ds.tables, ds.lat, ds.ratio(), ds.ratio_with_lat());

  // 4. Random access: decompress one block in the middle, like a cache miss.
  const std::size_t block = samc_image.block_count() / 2;
  const auto decompressor = sadc_codec.make_decompressor(sadc_image);
  const std::vector<std::uint8_t> line = decompressor->block(block);
  std::printf("\ncache miss on block %zu -> %zu bytes decompressed:\n", block, line.size());
  const auto words = mips::bytes_to_words(line);
  std::printf("%s", mips::disassemble_program(
                        words, static_cast<std::uint32_t>(0x00400000 + block * 32)).c_str());

  // 5. Verify the whole round trip.
  if (samc_codec.decompress_all(samc_image) != code ||
      sadc_codec.decompress_all(sadc_image) != code) {
    std::fprintf(stderr, "round trip FAILED\n");
    return 1;
  }
  std::printf("\nround trip verified for both codecs.\n");
  return 0;
}
