#!/usr/bin/env bash
# End-to-end CLI exercise: assemble -> compress (every codec) -> info ->
# decompress -> byte-compare. Run by CTest with $1 = path to ccomp_cli.
set -euo pipefail
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

cat > "$DIR/prog.s" <<'EOF'
entry:
    addiu $sp, $sp, -32
    sw    $ra, 28($sp)
    li    $t0, 100
loop:
    addiu $t0, $t0, -1
    bne   $t0, $zero, loop
    nop
    lw    $ra, 28($sp)
    addiu $sp, $sp, 32
    jr    $ra
    nop
EOF

"$CLI" asm "$DIR/prog.s" "$DIR/prog.bin"
"$CLI" disasm "$DIR/prog.bin" | grep -q "jr \$ra"

for codec in samc sadc huffman; do
  "$CLI" compress "$DIR/prog.bin" "$DIR/prog.$codec.ccmp" --codec=$codec --isa=mips
  "$CLI" info "$DIR/prog.$codec.ccmp" | grep -q "ratio"
  "$CLI" decompress "$DIR/prog.$codec.ccmp" "$DIR/prog.$codec.out"
  cmp "$DIR/prog.bin" "$DIR/prog.$codec.out"
done
echo "CLI round trip OK"
