#include "coding/lzw.h"

#include <gtest/gtest.h>

#include "support/error.h"
#include "support/rng.h"

namespace ccomp::coding {
namespace {

void round_trip(std::span<const std::uint8_t> data, const LzwOptions& opt = {}) {
  const auto compressed = lzw_compress(data, opt);
  const auto restored = lzw_decompress(compressed, data.size(), opt);
  ASSERT_EQ(restored.size(), data.size());
  EXPECT_TRUE(std::equal(restored.begin(), restored.end(), data.begin()));
}

TEST(Lzw, EmptyInput) {
  round_trip({});
  EXPECT_TRUE(lzw_compress({}).empty());
}

TEST(Lzw, SingleByte) {
  const std::uint8_t data[] = {0x42};
  round_trip(data);
}

TEST(Lzw, KwKwKCase) {
  // "abababab..." produces the classic code-equal-to-next-entry case.
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 100; ++i) data.push_back(i % 2 ? 'b' : 'a');
  round_trip(data);
}

TEST(Lzw, RunsOfOneByte) {
  std::vector<std::uint8_t> data(10000, 0xAA);
  round_trip(data);
  const auto compressed = lzw_compress(data);
  EXPECT_LT(compressed.size(), data.size() / 10);
}

TEST(Lzw, RandomDataRoundTrips) {
  Rng rng(3);
  for (const std::size_t n : {1u, 7u, 256u, 4096u, 100000u}) {
    std::vector<std::uint8_t> data;
    data.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      data.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
    round_trip(data);
  }
}

TEST(Lzw, RepetitiveTextCompressesWell) {
  std::vector<std::uint8_t> data;
  const char* phrase = "the quick brown fox jumps over the lazy dog. ";
  for (int i = 0; i < 500; ++i)
    for (const char* p = phrase; *p; ++p) data.push_back(static_cast<std::uint8_t>(*p));
  const auto compressed = lzw_compress(data);
  EXPECT_LT(static_cast<double>(compressed.size()) / static_cast<double>(data.size()), 0.2);
  round_trip(data);
}

TEST(Lzw, DictionaryResetPathIsExercised) {
  // Enough distinct material to fill a 12-bit dictionary several times.
  LzwOptions opt;
  opt.max_code_bits = 12;
  Rng rng(4);
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 200000; ++i)
    data.push_back(static_cast<std::uint8_t>(rng.pick_skewed(200, 0.97)));
  round_trip(data, opt);
}

TEST(Lzw, StructuredBinaryRoundTrips) {
  // Word-structured data similar to instruction streams.
  Rng rng(5);
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 30000; ++i) {
    data.push_back(static_cast<std::uint8_t>(rng.pick_skewed(16, 0.6)));
    data.push_back(static_cast<std::uint8_t>(rng.pick_skewed(32, 0.7)));
    data.push_back(0x00);
    data.push_back(0x24);
  }
  round_trip(data);
}

TEST(Lzw, BadOptionsThrow) {
  LzwOptions opt;
  opt.min_code_bits = 8;
  EXPECT_THROW(lzw_compress(std::vector<std::uint8_t>{1, 2, 3}, opt), ConfigError);
}

TEST(Lzw, TruncatedStreamThrows) {
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 7);
  auto compressed = lzw_compress(data);
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(lzw_decompress(compressed, data.size()), CorruptDataError);
}

}  // namespace
}  // namespace ccomp::coding
