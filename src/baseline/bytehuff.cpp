#include "baseline/bytehuff.h"

#include "coding/huffman.h"
#include "support/bitio.h"
#include "support/error.h"

namespace ccomp::baseline {
namespace {

using coding::HuffmanCode;

class ByteHuffmanDecompressor final : public core::BlockDecompressor {
 public:
  ByteHuffmanDecompressor(const core::CompressedImage& image, HuffmanCode code)
      : BlockDecompressor(image.block_count()), image_(&image), code_(std::move(code)) {}

  std::vector<std::uint8_t> block(std::size_t index) const override {
    std::vector<std::uint8_t> out(image_->block_original_size(index));
    block_into(index, out);
    return out;
  }

  using BlockDecompressor::block_into;

  // The whole block is one Huffman run straight into the caller's buffer:
  // no intermediate state, so no scratch needed even on the refill path.
  void block_into(std::size_t index, std::span<std::uint8_t> out) const override {
    if (out.size() != image_->block_original_size(index))
      throw CorruptDataError("block_into destination does not match the block's original size");
    BitReader in(image_->block_payload(index));
    code_.decode_run(in, out.data(), out.size());
  }

 private:
  const core::CompressedImage* image_;
  HuffmanCode code_;
};

}  // namespace

ByteHuffmanCodec::ByteHuffmanCodec(ByteHuffmanOptions options) : options_(options) {
  if (options_.block_size == 0) throw ConfigError("block size must be nonzero");
}

core::CompressedImage ByteHuffmanCodec::compress(std::span<const std::uint8_t> code) const {
  std::vector<std::uint64_t> freq(256, 0);
  for (const std::uint8_t b : code) ++freq[b];
  const HuffmanCode huff = HuffmanCode::from_frequencies(freq);

  std::vector<std::uint8_t> payload;
  std::vector<std::uint32_t> offsets;
  for (std::size_t begin = 0; begin < code.size(); begin += options_.block_size) {
    offsets.push_back(static_cast<std::uint32_t>(payload.size()));
    const std::size_t end = begin + options_.block_size < code.size()
                                ? begin + options_.block_size
                                : code.size();
    BitWriter bits;
    for (std::size_t i = begin; i < end; ++i) huff.encode(bits, code[i]);
    const std::vector<std::uint8_t> block = bits.take();
    payload.insert(payload.end(), block.begin(), block.end());
  }
  offsets.push_back(static_cast<std::uint32_t>(payload.size()));
  if (code.empty()) offsets.assign(1, 0);

  ByteSink tables;
  huff.serialize(tables);
  return core::CompressedImage(core::CodecKind::kByteHuffman, options_.isa,
                               options_.block_size, code.size(), tables.take(),
                               std::move(offsets), std::move(payload));
}

std::unique_ptr<core::BlockDecompressor> ByteHuffmanCodec::make_decompressor(
    const core::CompressedImage& image) const {
  if (image.codec() != core::CodecKind::kByteHuffman)
    throw ConfigError("image was not produced by the byte-Huffman codec");
  ByteSource src(image.tables());
  HuffmanCode code = HuffmanCode::deserialize(src);
  return std::make_unique<ByteHuffmanDecompressor>(image, std::move(code));
}

}  // namespace ccomp::baseline
