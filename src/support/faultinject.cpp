#include "support/faultinject.h"

namespace ccomp::fault {

std::string_view model_name(Model model) {
  switch (model) {
    case Model::kSingleBit:
      return "single";
    case Model::kMultiBit:
      return "multi";
    case Model::kStuckAt0:
      return "stuck0";
    case Model::kStuckAt1:
      return "stuck1";
    case Model::kBurst:
      return "burst";
  }
  return "unknown";
}

bool parse_model(std::string_view name, Model& out) {
  if (name == "single") out = Model::kSingleBit;
  else if (name == "multi") out = Model::kMultiBit;
  else if (name == "stuck0") out = Model::kStuckAt0;
  else if (name == "stuck1") out = Model::kStuckAt1;
  else if (name == "burst") out = Model::kBurst;
  else return false;
  return true;
}

std::vector<FaultEvent> FaultInjector::inject(std::span<std::uint8_t> region,
                                              const FaultSpec& spec) {
  std::vector<FaultEvent> events;
  if (region.empty()) return events;
  const std::uint64_t total_bits = static_cast<std::uint64_t>(region.size()) * 8;

  auto flip = [&](std::uint64_t bit) {
    const std::size_t byte = static_cast<std::size_t>(bit >> 3);
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (bit & 7));
    region[byte] ^= mask;
    events.push_back({byte, mask});
  };
  auto stick = [&](std::uint64_t bit, bool value) {
    const std::size_t byte = static_cast<std::size_t>(bit >> 3);
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (bit & 7));
    const bool current = (region[byte] & mask) != 0;
    if (current == value) return;  // cell already holds the stuck value
    region[byte] ^= mask;
    events.push_back({byte, mask});
  };

  switch (spec.model) {
    case Model::kSingleBit:
      flip(rng_.next_below(total_bits));
      break;
    case Model::kMultiBit:
      for (unsigned i = 0; i < (spec.bits == 0 ? 1 : spec.bits); ++i)
        flip(rng_.next_below(total_bits));
      break;
    case Model::kStuckAt0:
      stick(rng_.next_below(total_bits), false);
      break;
    case Model::kStuckAt1:
      stick(rng_.next_below(total_bits), true);
      break;
    case Model::kBurst: {
      const unsigned len = spec.burst_bits == 0 ? 1 : spec.burst_bits;
      const std::uint64_t start = rng_.next_below(total_bits);
      for (unsigned i = 0; i < len && start + i < total_bits; ++i) flip(start + i);
      break;
    }
  }
  return events;
}

FaultEvent FaultInjector::flip_one(std::span<std::uint8_t> region) {
  FaultSpec spec;
  spec.model = Model::kSingleBit;
  const std::vector<FaultEvent> events = inject(region, spec);
  return events.empty() ? FaultEvent{} : events.front();
}

void FaultInjector::revert(std::span<std::uint8_t> region,
                           std::span<const FaultEvent> events) {
  for (const FaultEvent& e : events)
    if (e.byte_offset < region.size()) region[e.byte_offset] ^= e.bit_mask;
}

}  // namespace ccomp::fault
