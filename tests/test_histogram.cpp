#include "support/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.h"

namespace ccomp {
namespace {

TEST(Histogram, CountsAndTotals) {
  Histogram h(4);
  h.add(0);
  h.add(1, 5);
  h.add(3, 2);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 5u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.total(), 8u);
  EXPECT_EQ(h.distinct(), 3u);
}

TEST(Entropy, UniformIsLogN) {
  std::vector<std::uint64_t> counts(8, 10);
  EXPECT_NEAR(entropy_bits(counts), 3.0, 1e-12);
}

TEST(Entropy, DegenerateIsZero) {
  std::vector<std::uint64_t> counts = {0, 42, 0};
  EXPECT_DOUBLE_EQ(entropy_bits(counts), 0.0);
  EXPECT_DOUBLE_EQ(entropy_bits(std::vector<std::uint64_t>{}), 0.0);
}

TEST(BinaryEntropy, HalfIsOneBit) {
  EXPECT_NEAR(binary_entropy(0.5), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_LT(binary_entropy(0.1), binary_entropy(0.3));
}

TEST(BinaryCorrelation, IdenticalSequencesCorrelatePerfectly) {
  const std::uint8_t a[] = {0, 1, 1, 0, 1, 0, 0, 1};
  EXPECT_NEAR(binary_correlation(a, a), 1.0, 1e-12);
}

TEST(BinaryCorrelation, ComplementIsMinusOne) {
  const std::uint8_t a[] = {0, 1, 1, 0, 1, 0, 0, 1};
  const std::uint8_t b[] = {1, 0, 0, 1, 0, 1, 1, 0};
  EXPECT_NEAR(binary_correlation(a, b), -1.0, 1e-12);
}

TEST(BinaryCorrelation, ConstantSequenceIsZero) {
  const std::uint8_t a[] = {1, 1, 1, 1};
  const std::uint8_t b[] = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(binary_correlation(a, b), 0.0);
}

TEST(BitCorrelationMatrix, DiagonalIsOneAndSymmetric) {
  Rng rng(7);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 500; ++i) words.push_back(rng.next_u32());
  const auto m = bit_correlation_matrix(words);
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(m[static_cast<std::size_t>(i) * 32 + i], 1.0);
    for (int j = 0; j < 32; ++j)
      EXPECT_DOUBLE_EQ(m[static_cast<std::size_t>(i) * 32 + j],
                       m[static_cast<std::size_t>(j) * 32 + i]);
  }
}

TEST(BitCorrelationMatrix, DetectsCopiedBit) {
  // Bit 5 copies bit 17 in every word.
  Rng rng(11);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 2000; ++i) {
    std::uint32_t w = rng.next_u32() & ~(1u << 5);
    w |= ((w >> 17) & 1u) << 5;
    words.push_back(w);
  }
  const auto m = bit_correlation_matrix(words);
  EXPECT_NEAR(m[5 * 32 + 17], 1.0, 1e-9);
  // Independent bits stay near zero.
  EXPECT_LT(m[3 * 32 + 21], 0.15);
}

TEST(BitOneProbability, MatchesConstruction) {
  std::vector<std::uint32_t> words(100, 1u | (1u << 31));
  const auto p = bit_one_probability(words);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[31], 1.0);
  EXPECT_DOUBLE_EQ(p[10], 0.0);
}

}  // namespace
}  // namespace ccomp
