// Ablation T-DS: SADC dictionary-size sensitivity. The paper fixes the
// dictionary at 256 one-byte-indexed entries; sweep smaller budgets to show
// the knee.
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_dictsize", argc, argv);
  std::printf("Table T-DS: SADC dictionary-size sensitivity (scale=%.2f)\n", scale);

  const std::size_t sizes[] = {96, 128, 192, 256};
  core::RatioTable table("SADC ratio vs max dictionary symbols",
                         {"96", "128", "192", "256"});

  for (const char* name : {"gcc", "go", "perl", "vortex"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto code = mips::words_to_bytes(workload::generate_mips(p));
    std::vector<double> row;
    for (const std::size_t n : sizes) {
      sadc::SadcOptions opt;
      opt.max_symbols = n;
      row.push_back(sadc::SadcMipsCodec(opt).compress(code).sizes().ratio());
      json.add(name, "sadc_ratio_dict" + std::to_string(n), row.back(), "ratio");
    }
    table.add_row(name, row);
    std::fflush(stdout);
  }
  table.print();
  std::printf("\nExpectation: ratio improves with budget and flattens near 256.\n");
  return 0;
}
