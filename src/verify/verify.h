// Static image verifier (decodability linter).
//
// Audits a serialized compressed image and its side tables *without running
// the decoder*: the random-access guarantee of the Wolfe/Chanin organisation
// rests on structural invariants (a monotone LAT that covers the payload,
// sound Huffman/Markov/dictionary tables, branch targets that land on mapped
// blocks) which are proved here as static properties, so a loader can reject
// a bad image before the refill engine ever touches it.
//
// Three layers of checks:
//   1. Container (SER/IMG/LAT): an independent re-parse of the serialized
//      byte stream — framing, integrity checksum, header cross-checks, LAT
//      monotonicity/coverage — with findings tied to the corrupted region.
//   2. Tables (TBL/HUF/DIC/MKV): codec-specific side-table soundness —
//      canonical-Huffman Kraft discipline, SADC dictionary well-formedness,
//      Markov model validity and state-graph reachability.
//   3. Control flow (CFG): with the original program supplied, disassemble
//      it, build the branch/jump target set, and verify every target lands
//      on a block the LAT maps (x86: that the stream splitter's length
//      decode re-synchronizes at each block start).
//
// Every finding carries a stable check ID from check_catalogue() and a
// severity; `error` means the image is not guaranteed decodable.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/image.h"

namespace ccomp::verify {

enum class Severity : std::uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

std::string_view severity_name(Severity severity);

/// One verifier observation: a stable check ID, a severity, and a message
/// describing the specific violation (region, value, expectation).
struct Finding {
  std::string check;
  Severity severity = Severity::kError;
  std::string message;
};

class VerifyReport {
 public:
  void add(std::string_view check, Severity severity, std::string message);
  void merge(const VerifyReport& other);

  const std::vector<Finding>& findings() const { return findings_; }
  std::size_t count(Severity severity) const;
  std::size_t error_count() const { return count(Severity::kError); }
  /// True when no error-severity finding was recorded (warn/info allowed).
  bool ok() const { return error_count() == 0; }
  bool has(std::string_view check) const;

  /// Multi-line human-readable listing, one finding per line.
  std::string to_string() const;

 private:
  std::vector<Finding> findings_;
};

/// Catalogue entry: the invariant each check ID proves.
struct CheckInfo {
  const char* id;
  Severity severity;
  const char* summary;
};

/// Every check ID the verifier can emit, with its severity and the invariant
/// it enforces. Stable across releases; IDs are never reused.
std::span<const CheckInfo> check_catalogue();

struct VerifyOptions {
  /// The original (uncompressed) program. When non-empty, ISA-level
  /// control-flow checks (CFG*) run against it; when empty they are skipped.
  std::span<const std::uint8_t> original_code;
  /// Master switch for the CFG layer (table/structure checks always run).
  bool control_flow = true;
  /// Load address of the MIPS text segment, used to resolve absolute
  /// 26-bit jump targets back to program offsets.
  std::uint64_t mips_text_base = 0x00400000;
  /// Run the decode-certificate layer (ANA/WCB): recompute the image's
  /// certificate via ccomp::analysis and cross-check any embedded one.
  bool certify = false;
  /// State cap for the certificate engine's exhaustive exploration.
  std::size_t certify_state_cap = std::size_t{1} << 16;
};

/// Audit an already-deserialized image: structure, tables, control flow.
VerifyReport verify_image(const core::CompressedImage& image, const VerifyOptions& opts = {});

/// Audit a serialized container from its raw bytes. Re-parses the framing
/// independently (so findings name the corrupted region even when
/// CompressedImage::deserialize would reject the container outright),
/// verifies the integrity trailer, then runs the deep verify_image checks
/// best-effort on whatever still parses.
VerifyReport verify_serialized(std::span<const std::uint8_t> bytes, const VerifyOptions& opts = {});

namespace detail {
void check_structure(const core::CompressedImage& image, VerifyReport& report);
void check_tables(const core::CompressedImage& image, VerifyReport& report);
void check_layout(const core::CompressedImage& image, VerifyReport& report);
void check_control_flow(const core::CompressedImage& image, const VerifyOptions& opts,
                        VerifyReport& report);
void check_certificate(const core::CompressedImage& image, const VerifyOptions& opts,
                       VerifyReport& report);
}  // namespace detail

}  // namespace ccomp::verify
