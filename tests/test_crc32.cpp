// CRC-32 slicing-by-8 cross-checks. The slicing tables must compute exactly
// the standard reflected CRC-32 (IEEE 802.3): every serialized image and
// every self-healing golden-CRC gate depends on the value being identical
// to what the old byte-at-a-time loop produced.
#include "support/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <vector>

#include "support/rng.h"

namespace ccomp {
namespace {

// The classic byte-at-a-time reference, written independently of the
// production tables so a table-generation bug cannot cancel out.
std::uint32_t crc32_reference(std::span<const std::uint8_t> data, std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    c ^= byte;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
  }
  return c ^ 0xFFFFFFFFu;
}

std::span<const std::uint8_t> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Crc32, StandardCheckValue) {
  // The CRC-32 "check" value from the specification.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32({}), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(bytes_of("abc")), 0x352441C2u);
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32(zeros), 0x190A55ADu);
  const std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32(ones), 0xFF6CAB0Bu);
}

TEST(Crc32, MatchesReferenceAcrossLengthsAndAlignments) {
  // Cover every length class around the 8-byte slicing boundary and every
  // starting alignment, so both the head/tail byte loop and the 64-bit main
  // loop are exercised against the reference.
  Rng rng(1234);
  std::vector<std::uint8_t> buf(4096 + 16);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (std::size_t offset = 0; offset < 8; ++offset) {
    for (std::size_t len : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 63u, 64u, 65u, 255u, 1024u,
                            4096u}) {
      const std::span<const std::uint8_t> s(buf.data() + offset, len);
      ASSERT_EQ(crc32(s), crc32_reference(s)) << "offset " << offset << " len " << len;
    }
  }
}

TEST(Crc32, SeedChainingSplitsAnywhere) {
  Rng rng(99);
  std::vector<std::uint8_t> buf(257);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_below(256));
  const std::uint32_t whole = crc32(buf);
  for (std::size_t split : {0u, 1u, 5u, 8u, 64u, 200u, 256u, 257u}) {
    const std::span<const std::uint8_t> head(buf.data(), split);
    const std::span<const std::uint8_t> tail(buf.data() + split, buf.size() - split);
    EXPECT_EQ(crc32(tail, crc32(head)), whole) << "split " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> buf(128, 0xA5);
  const std::uint32_t clean = crc32(buf);
  for (std::size_t byte : {0u, 1u, 63u, 64u, 127u}) {
    for (int bit : {0, 4, 7}) {
      buf[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32(buf), clean) << "byte " << byte << " bit " << bit;
      buf[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace ccomp
