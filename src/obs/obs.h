// ccomp::obs — telemetry and tracing for the compressed-code pipeline.
//
// Three facilities, all process-wide:
//
//   * A metrics REGISTRY of named counters, gauges, and fixed-bucket
//     latency histograms. Counters and histograms write to lock-free
//     per-thread shards (one relaxed atomic add on a thread-owned cache
//     line — safe from pool workers without serializing them) and are
//     summed across shards on read; a thread's shard folds into a retired
//     accumulator when the thread exits, so totals never go backward.
//     Metrics are interned by name: every call site naming
//     "memsys.cache.misses" feeds the same series.
//
//   * Scoped tracing SPANS (`CCOMP_SPAN("samc.decode_block")`): RAII
//     regions recording {name, thread, depth, start, duration} into a
//     bounded global ring buffer (oldest events overwritten). Recording is
//     off by default and costs one predictable branch per span; `--trace`
//     turns it on. Drain the buffer at a quiescent point — the ring is
//     written lock-free and a drain racing live writers may observe a
//     torn event.
//
//   * EXPORTERS over an aggregated Snapshot: Prometheus text exposition,
//     a JSON snapshot, a human-readable table, and chrome://tracing
//     (trace_event) JSON for the span buffer.
//
// Instrument through the CCOMP_* macros, never the Registry directly: the
// macros intern the metric once per call site (function-local static id)
// and compile to nothing when CCOMP_OBS_DISABLE is defined (cmake
// -DCCOMP_OBS=OFF), which is the ≤1 %-overhead configuration the bench
// acceptance gate measures. The registry API itself stays available in
// disabled builds so exporters and CLIs always link.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ccomp::obs {

/// Monotonic nanoseconds (steady clock) — the time base for histograms,
/// span timestamps, and the chrome-trace export.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- Aggregated state (what exporters consume) ---------------------------

struct CounterValue {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::string help;
  std::int64_t value = 0;
};

struct HistogramValue {
  std::string name;
  std::string help;
  /// Upper bucket bounds (inclusive, "le" semantics); an implicit +Inf
  /// bucket follows, so bucket_counts.size() == bounds.size() + 1.
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

// --- Registry -------------------------------------------------------------

class Registry {
 public:
  /// The process-wide registry (leaky singleton: never destroyed, so
  /// thread-exit hooks and exporters running during shutdown stay safe).
  static Registry& instance();

  /// Intern a metric; the same name always returns the same id. A name may
  /// be registered from many call sites but must keep one kind — a kind
  /// mismatch throws. Capacity is fixed (kMaxMetrics / kMaxSlots);
  /// exceeding it throws rather than silently dropping series.
  std::uint32_t counter(std::string_view name, std::string_view help = {});
  std::uint32_t gauge(std::string_view name, std::string_view help = {});
  /// Empty `bounds` selects default_latency_bounds_ns(). Bounds must be
  /// strictly increasing.
  std::uint32_t histogram(std::string_view name, std::span<const std::uint64_t> bounds = {},
                          std::string_view help = {});

  void add(std::uint32_t counter_id, std::uint64_t n = 1);
  void gauge_set(std::uint32_t gauge_id, std::int64_t value);
  void gauge_add(std::uint32_t gauge_id, std::int64_t delta);
  void record(std::uint32_t histogram_id, std::uint64_t value);

  /// Sum every live shard plus the retired accumulator into a stable,
  /// registration-ordered snapshot.
  Snapshot snapshot() const;

  /// Zero every series (registrations and interned ids survive). Counters
  /// are cumulative by design; this exists for tests and for tools that
  /// want per-phase deltas without bookkeeping.
  void reset();

  /// The default latency ladder: 250 ns .. 50 ms in a 1-2.5-5 progression,
  /// wide enough for a single block decode and a full golden refetch.
  static std::span<const std::uint64_t> default_latency_bounds_ns();

  // Internal (used by the shard thread-exit hook).
  struct Shard;
  void attach_(Shard* shard);
  void detach_(Shard* shard);

 private:
  Registry();
  struct Impl;
  Impl* impl_;
};

// --- Tracing spans --------------------------------------------------------

struct SpanEvent {
  const char* name = nullptr;  // string literal supplied to CCOMP_SPAN
  std::uint32_t thread = 0;    // small sequential id, stable per thread
  std::uint32_t depth = 0;     // nesting depth within the thread
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Turn span recording on/off (off by default; `--trace` turns it on).
void set_trace_enabled(bool enabled);
bool trace_enabled();

/// Resize the ring (dropping recorded events). Only meaningful while
/// tracing is disabled; the default capacity is 65536 events.
void set_trace_capacity(std::size_t events);

/// Recorded events, oldest first. Drain at a quiescent point.
std::vector<SpanEvent> trace_events();
void clear_trace();

namespace detail {
void record_span(const char* name, std::uint32_t depth, std::uint64_t start_ns,
                 std::uint64_t dur_ns);
extern thread_local std::uint32_t t_span_depth;
}  // namespace detail

/// RAII span. Construction is a single branch when tracing is off.
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    if (!trace_enabled()) return;
    name_ = name;
    depth_ = detail::t_span_depth++;
    start_ = now_ns();
  }
  ~SpanScope() {
    if (name_ == nullptr) return;
    --detail::t_span_depth;
    detail::record_span(name_, depth_, start_, now_ns() - start_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint32_t depth_ = 0;
  std::uint64_t start_ = 0;
};

/// RAII histogram timer: records elapsed nanoseconds on scope exit.
class HistTimer {
 public:
  explicit HistTimer(std::uint32_t histogram_id) : id_(histogram_id), start_(now_ns()) {}
  ~HistTimer() { Registry::instance().record(id_, now_ns() - start_); }
  HistTimer(const HistTimer&) = delete;
  HistTimer& operator=(const HistTimer&) = delete;

 private:
  std::uint32_t id_;
  std::uint64_t start_;
};

// --- Exporters ------------------------------------------------------------

/// Prometheus text exposition format. Metric names are sanitized
/// (dots/dashes -> '_', "ccomp_" prefix, counters get "_total").
///
/// Label convention: a registered name may carry a `|k=v,k2=v2` suffix
/// ("server.cache.hits|shard=3"); the exporter renders the suffix as
/// Prometheus labels on the sanitized base name
/// (ccomp_server_cache_hits_total{shard="3"}) and groups all series of one
/// base name under a single TYPE line. The other exporters (JSON, table)
/// keep the raw registered name as the key.
std::string to_prometheus(const Snapshot& snapshot);

/// JSON snapshot: {"counters":{..}, "gauges":{..}, "histograms":{..}}.
std::string to_json(const Snapshot& snapshot);

/// Aligned human-readable table (what `ccomp_stats` prints).
std::string to_table(const Snapshot& snapshot);

/// chrome://tracing / Perfetto trace_event JSON ("X" complete events).
std::string to_chrome_trace(std::span<const SpanEvent> events);

}  // namespace ccomp::obs

// --- Instrumentation macros ----------------------------------------------
//
// Enabled by default; a build with CCOMP_OBS_DISABLE (cmake -DCCOMP_OBS=OFF)
// compiles every macro to a dead expression: arguments are type-checked but
// never evaluated, so no clock reads, no atomics, no statics remain.

#define CCOMP_OBS_CONCAT_IMPL_(a, b) a##b
#define CCOMP_OBS_CONCAT_(a, b) CCOMP_OBS_CONCAT_IMPL_(a, b)

#if !defined(CCOMP_OBS_DISABLE)

#define CCOMP_COUNT(name, n)                                                      \
  do {                                                                            \
    static const std::uint32_t ccomp_obs_id_ =                                    \
        ::ccomp::obs::Registry::instance().counter(name);                         \
    ::ccomp::obs::Registry::instance().add(ccomp_obs_id_,                         \
                                           static_cast<std::uint64_t>(n));        \
  } while (0)

#define CCOMP_GAUGE_SET(name, v)                                                  \
  do {                                                                            \
    static const std::uint32_t ccomp_obs_id_ =                                    \
        ::ccomp::obs::Registry::instance().gauge(name);                           \
    ::ccomp::obs::Registry::instance().gauge_set(ccomp_obs_id_,                   \
                                                 static_cast<std::int64_t>(v));   \
  } while (0)

#define CCOMP_GAUGE_ADD(name, d)                                                  \
  do {                                                                            \
    static const std::uint32_t ccomp_obs_id_ =                                    \
        ::ccomp::obs::Registry::instance().gauge(name);                           \
    ::ccomp::obs::Registry::instance().gauge_add(ccomp_obs_id_,                   \
                                                 static_cast<std::int64_t>(d));   \
  } while (0)

#define CCOMP_HIST(name, value)                                                   \
  do {                                                                            \
    static const std::uint32_t ccomp_obs_id_ =                                    \
        ::ccomp::obs::Registry::instance().histogram(name);                       \
    ::ccomp::obs::Registry::instance().record(ccomp_obs_id_,                      \
                                              static_cast<std::uint64_t>(value)); \
  } while (0)

/// Scoped trace span (see SpanScope); statement position, block scope.
#define CCOMP_SPAN(name) \
  ::ccomp::obs::SpanScope CCOMP_OBS_CONCAT_(ccomp_obs_span_, __LINE__)(name)

/// Scoped latency histogram: records elapsed ns into `name` on scope exit.
#define CCOMP_TIMER(name)                                                       \
  static const std::uint32_t CCOMP_OBS_CONCAT_(ccomp_obs_timer_id_, __LINE__) = \
      ::ccomp::obs::Registry::instance().histogram(name);                       \
  ::ccomp::obs::HistTimer CCOMP_OBS_CONCAT_(ccomp_obs_timer_, __LINE__)(        \
      CCOMP_OBS_CONCAT_(ccomp_obs_timer_id_, __LINE__))

#else  // CCOMP_OBS_DISABLE

// The sizeof operand is type-checked but never evaluated, so no side
// effects, clocks, or statics survive — and no -Wunused-value noise.
#define CCOMP_OBS_SINK_(...) ((void)sizeof(((void)(__VA_ARGS__), 0)))

#define CCOMP_COUNT(name, n) CCOMP_OBS_SINK_(name, n)
#define CCOMP_GAUGE_SET(name, v) CCOMP_OBS_SINK_(name, v)
#define CCOMP_GAUGE_ADD(name, d) CCOMP_OBS_SINK_(name, d)
#define CCOMP_HIST(name, value) CCOMP_OBS_SINK_(name, value)
#define CCOMP_SPAN(name) CCOMP_OBS_SINK_(name)
#define CCOMP_TIMER(name) CCOMP_OBS_SINK_(name)

#endif  // CCOMP_OBS_DISABLE
