#include "core/report.h"

#include "support/error.h"

namespace ccomp::core {

RatioTable::RatioTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void RatioTable::add_row(const std::string& name, std::span<const double> values) {
  if (values.size() != columns_.size())
    throw ConfigError("RatioTable row width mismatch");
  rows_.emplace_back(name, std::vector<double>(values.begin(), values.end()));
}

std::vector<double> RatioTable::column_means() const {
  std::vector<double> means(columns_.size(), 0.0);
  if (rows_.empty()) return means;
  for (const auto& [name, values] : rows_)
    for (std::size_t c = 0; c < values.size(); ++c) means[c] += values[c];
  for (double& m : means) m /= static_cast<double>(rows_.size());
  return means;
}

void RatioTable::print() const {
  std::printf("\n== %s ==\n", title_.c_str());
  std::printf("%-12s", "benchmark");
  for (const auto& c : columns_) std::printf(" %10s", c.c_str());
  std::printf("\n");
  for (const auto& [name, values] : rows_) {
    std::printf("%-12s", name.c_str());
    for (const double v : values) std::printf(" %10.3f", v);
    std::printf("\n");
  }
  const auto means = column_means();
  std::printf("%-12s", "MEAN");
  for (const double v : means) std::printf(" %10.3f", v);
  std::printf("\n");
}

}  // namespace ccomp::core
