#include "layout/layout.h"

#include <algorithm>
#include <cstring>
#include <optional>

#include "support/bitio.h"
#include "support/error.h"

namespace ccomp::layout {

namespace {

constexpr std::uint32_t kPlanMagic = 0x4C41594Fu;  // "OYAL" LE -> "LAYO" logical
constexpr std::uint8_t kPlanVersion = 1;

std::uint64_t edge_key(std::uint32_t from, std::uint32_t to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kCold: return "cold";
    case Tier::kHot: return "hot";
    case Tier::kWarm: return "warm";
  }
  return "?";
}

std::vector<std::uint32_t> PlacementPlan::orig_of() const {
  std::vector<std::uint32_t> inverse(block_count, 0);
  for (std::uint32_t b = 0; b < block_count; ++b) inverse[slot_of[b]] = b;
  return inverse;
}

std::vector<std::uint32_t> PlacementPlan::predicted(std::uint32_t slot) const {
  std::vector<std::uint32_t> out;
  if (predictor_k == 0 || slot >= block_count) return out;
  const std::size_t base = static_cast<std::size_t>(slot) * predictor_k;
  for (std::uint32_t j = 0; j < predictor_k; ++j) {
    const std::uint32_t s = successors[base + j];
    if (s != kNoSuccessor) out.push_back(s);
  }
  return out;
}

void PlacementPlan::serialize(ByteSink& sink) const {
  sink.u32(kPlanMagic);
  sink.u8(kPlanVersion);
  sink.varint(block_count);
  for (const std::uint32_t s : slot_of) sink.varint(s);
  for (const Tier t : tiers) sink.u8(static_cast<std::uint8_t>(t));
  sink.varint(predictor_k);
  // Successors bias by one so the sentinel serializes as a 1-byte zero.
  for (const std::uint32_t s : successors)
    sink.varint(s == kNoSuccessor ? 0 : static_cast<std::uint64_t>(s) + 1);
  sink.u8(warm_lengths.empty() ? 0 : 1);
  if (!warm_lengths.empty()) sink.bytes(warm_lengths);
}

PlacementPlan PlacementPlan::deserialize(ByteSource& src) {
  // Structural parse only: truncation and garbage fields are typed
  // CorruptDataError; semantic invariants (bijection, successor range) are
  // validate()'s job so the verifier can report them as distinct findings.
  if (src.u32() != kPlanMagic) throw CorruptDataError("bad placement-plan magic");
  if (src.u8() != kPlanVersion) throw CorruptDataError("unknown placement-plan version");
  PlacementPlan plan;
  const std::uint64_t count = src.varint();
  // Every slot entry takes at least one byte; reject absurd counts before
  // allocating (same trick as the container's LAT count check).
  if (count > src.remaining()) throw CorruptDataError("placement-plan block count too large");
  plan.block_count = static_cast<std::uint32_t>(count);
  plan.slot_of.reserve(plan.block_count);
  for (std::uint32_t i = 0; i < plan.block_count; ++i) {
    const std::uint64_t s = src.varint();
    if (s > 0xFFFFFFFFull) throw CorruptDataError("placement-plan slot overflow");
    plan.slot_of.push_back(static_cast<std::uint32_t>(s));
  }
  plan.tiers.reserve(plan.block_count);
  for (std::uint32_t i = 0; i < plan.block_count; ++i) {
    const std::uint8_t t = src.u8();
    if (t > 2) throw CorruptDataError("unknown placement-plan tier");
    plan.tiers.push_back(static_cast<Tier>(t));
  }
  const std::uint64_t k = src.varint();
  if (k > 16) throw CorruptDataError("placement-plan predictor arity too large");
  plan.predictor_k = static_cast<std::uint32_t>(k);
  const std::uint64_t entries = static_cast<std::uint64_t>(plan.block_count) * plan.predictor_k;
  if (plan.predictor_k != 0 && entries > src.remaining())
    throw CorruptDataError("placement-plan predictor table too large");
  plan.successors.reserve(static_cast<std::size_t>(entries));
  for (std::uint64_t i = 0; i < entries; ++i) {
    const std::uint64_t s = src.varint();
    if (s > 0xFFFFFFFFull) throw CorruptDataError("placement-plan successor overflow");
    plan.successors.push_back(s == 0 ? kNoSuccessor : static_cast<std::uint32_t>(s - 1));
  }
  if (src.u8() != 0) {
    const std::span<const std::uint8_t> lengths = src.bytes(256);
    plan.warm_lengths.assign(lengths.begin(), lengths.end());
  }
  return plan;
}

std::vector<std::uint8_t> PlacementPlan::to_blob() const {
  ByteSink sink;
  serialize(sink);
  return sink.take();
}

PlacementPlan PlacementPlan::from_blob(std::span<const std::uint8_t> blob) {
  ByteSource src(blob);
  PlacementPlan plan = deserialize(src);
  if (!src.at_end()) throw CorruptDataError("trailing bytes after placement plan");
  return plan;
}

void PlacementPlan::validate() const {
  if (slot_of.size() != block_count || tiers.size() != block_count)
    throw CorruptDataError("placement-plan field sizes inconsistent");
  std::vector<bool> seen(block_count, false);
  for (const std::uint32_t s : slot_of) {
    if (s >= block_count || seen[s])
      throw CorruptDataError("placement-plan permutation is not a bijection");
    seen[s] = true;
  }
  if (successors.size() != static_cast<std::size_t>(block_count) * predictor_k)
    throw CorruptDataError("placement-plan predictor table size inconsistent");
  for (const std::uint32_t s : successors)
    if (s != kNoSuccessor && s >= block_count)
      throw CorruptDataError("placement-plan predictor successor out of range");
  const bool any_warm =
      std::any_of(tiers.begin(), tiers.end(), [](Tier t) { return t == Tier::kWarm; });
  if (any_warm && warm_lengths.size() != 256)
    throw CorruptDataError("placement-plan warm tier lacks its code table");
}

PlacementPlan plan_from_image(const core::CompressedImage& image) {
  if (!image.has_layout()) throw ConfigError("image carries no layout section");
  PlacementPlan plan = PlacementPlan::from_blob(image.layout());
  if (plan.block_count != image.block_count())
    throw CorruptDataError("placement-plan block count disagrees with the image");
  plan.validate();
  return plan;
}

AccessProfile AccessProfile::from_trace(std::span<const std::uint32_t> addresses,
                                        std::uint32_t block_size, std::size_t block_count,
                                        std::uint32_t base_address) {
  if (block_size == 0) throw ConfigError("block_size must be nonzero");
  AccessProfile profile;
  profile.counts.assign(block_count, 0);
  bool have_prev = false;
  std::uint32_t prev = 0;
  for (const std::uint32_t address : addresses) {
    if (address < base_address) continue;
    const std::uint32_t block = (address - base_address) / block_size;
    if (block >= block_count) continue;
    ++profile.counts[block];
    if (have_prev && prev != block) ++profile.edges[edge_key(prev, block)];
    prev = block;
    have_prev = true;
  }
  return profile;
}

PlacementPlan optimize_layout(const AccessProfile& profile, std::uint64_t original_size,
                              std::uint32_t block_size, const LayoutOptions& options) {
  if (block_size == 0) throw ConfigError("block_size must be nonzero");
  const std::size_t blocks =
      static_cast<std::size_t>((original_size + block_size - 1) / block_size);
  if (profile.counts.size() != blocks)
    throw ConfigError("profile block count disagrees with the image geometry");
  if (blocks > 0xFFFFFFFFull) throw ConfigError("too many blocks for a placement plan");

  PlacementPlan plan;
  plan.block_count = static_cast<std::uint32_t>(blocks);
  plan.slot_of.assign(blocks, 0);
  plan.tiers.assign(blocks, Tier::kCold);
  if (blocks == 0) return plan;

  // A short final block must keep the last slot: under uniform geometry a
  // slot's original size is derived from its index, so only the last slot
  // may be short.
  const bool pin_last = (original_size % block_size) != 0;
  const std::uint32_t last = plan.block_count - 1;
  const std::uint32_t movable = pin_last ? last : plan.block_count;

  // Hottest-first seed order (stable: ties keep original index order, which
  // preserves fall-through locality among equally-hot blocks).
  std::vector<std::uint32_t> by_heat(movable);
  for (std::uint32_t b = 0; b < movable; ++b) by_heat[b] = b;
  std::stable_sort(by_heat.begin(), by_heat.end(), [&](std::uint32_t a, std::uint32_t b) {
    return profile.counts[a] > profile.counts[b];
  });

  // orig_of: slot -> original block, built by greedy affinity chaining.
  std::vector<std::uint32_t> order;
  order.reserve(blocks);
  if (options.cluster) {
    // Symmetric affinity: transitions in either direction pull two blocks
    // into the same LAT/CLB group.
    std::unordered_map<std::uint64_t, std::uint64_t> sym;
    std::vector<std::vector<std::uint32_t>> neighbours(movable);
    for (const auto& [key, weight] : profile.edges) {
      const std::uint32_t from = static_cast<std::uint32_t>(key >> 32);
      const std::uint32_t to = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
      if (from >= movable || to >= movable) continue;
      const std::uint64_t k =
          from < to ? edge_key(from, to) : edge_key(to, from);
      if (sym.emplace(k, weight).second) {
        neighbours[from].push_back(to);
        neighbours[to].push_back(from);
      } else {
        sym[k] += weight;
      }
    }
    std::vector<bool> placed(movable, false);
    for (const std::uint32_t seed : by_heat) {
      if (placed[seed]) continue;
      std::uint32_t cur = seed;
      placed[cur] = true;
      order.push_back(cur);
      // Extend the chain while an unplaced neighbour exists; strongest
      // affinity wins, ties to the lower block index for determinism.
      for (;;) {
        std::uint32_t best = movable;
        std::uint64_t best_weight = 0;
        std::vector<std::uint32_t>& adj = neighbours[cur];
        for (const std::uint32_t n : adj) {
          if (placed[n]) continue;
          const std::uint64_t k = cur < n ? edge_key(cur, n) : edge_key(n, cur);
          const std::uint64_t w = sym[k];
          if (w > best_weight || (w == best_weight && best != movable && n < best)) {
            best = n;
            best_weight = w;
          }
        }
        if (best == movable || best_weight == 0) break;
        placed[best] = true;
        order.push_back(best);
        cur = best;
      }
    }
  } else {
    for (std::uint32_t b = 0; b < movable; ++b) order.push_back(b);
  }
  if (pin_last) order.push_back(last);
  for (std::uint32_t s = 0; s < plan.block_count; ++s) plan.slot_of[order[s]] = s;

  // Tier assignment by access-count quantile over *executed* blocks.
  std::size_t executed = 0;
  for (const std::uint32_t b : by_heat)
    if (profile.counts[b] > 0) ++executed;
  const auto quota = [&](double fraction) {
    const double want = fraction * static_cast<double>(blocks) + 0.5;
    return std::min(executed, static_cast<std::size_t>(want < 0.0 ? 0.0 : want));
  };
  const std::size_t hot_n = quota(options.hot_fraction);
  const std::size_t warm_n = std::min(executed - hot_n, quota(options.warm_fraction));
  for (std::size_t i = 0; i < hot_n + warm_n; ++i) {
    const std::uint32_t b = by_heat[i];
    if (profile.counts[b] == 0) break;
    plan.tiers[plan.slot_of[b]] = i < hot_n ? Tier::kHot : Tier::kWarm;
  }

  // Predictor: top-K outgoing transitions per block, recorded in slot space.
  plan.predictor_k = options.predictor_k;
  if (plan.predictor_k > 0) {
    plan.successors.assign(static_cast<std::size_t>(blocks) * plan.predictor_k,
                           PlacementPlan::kNoSuccessor);
    std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>> out(blocks);
    for (const auto& [key, weight] : profile.edges) {
      const std::uint32_t from = static_cast<std::uint32_t>(key >> 32);
      const std::uint32_t to = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
      if (from < blocks && to < blocks) out[from].push_back({weight, to});
    }
    for (std::uint32_t b = 0; b < blocks; ++b) {
      std::vector<std::pair<std::uint64_t, std::uint32_t>>& cand = out[b];
      std::stable_sort(cand.begin(), cand.end(),
                       [](const auto& a, const auto& c) { return a.first > c.first; });
      const std::size_t base = static_cast<std::size_t>(plan.slot_of[b]) * plan.predictor_k;
      for (std::size_t j = 0; j < cand.size() && j < plan.predictor_k; ++j)
        plan.successors[base + j] = plan.slot_of[cand[j].second];
    }
  }
  return plan;
}

namespace {

/// Slot-indexed tier dispatch over the inner codec's decompressor.
class TierDecompressor final : public core::BlockDecompressor {
 public:
  TierDecompressor(const core::BlockCodec& codec, const core::CompressedImage& image,
                   PlacementPlan plan)
      : BlockDecompressor(image.block_count()),
        image_(&image),
        plan_(std::move(plan)),
        inner_(codec.make_decompressor(image)) {
    if (!plan_.warm_lengths.empty())
      warm_ = coding::HuffmanCode::from_lengths(plan_.warm_lengths);
  }

  std::vector<std::uint8_t> block(std::size_t index) const override {
    std::vector<std::uint8_t> out(image_->block_original_size(index));
    core::DecodeScratch scratch;
    block_into(index, out, scratch);
    return out;
  }

  void block_into(std::size_t index, std::span<std::uint8_t> out,
                  core::DecodeScratch& scratch) const override {
    if (index >= plan_.tiers.size()) throw ConfigError("block index out of range");
    switch (plan_.tiers[index]) {
      case Tier::kCold:
        inner_->block_into(index, out, scratch);
        return;
      case Tier::kHot: {
        const std::span<const std::uint8_t> payload = image_->block_payload(index);
        if (payload.size() != out.size())
          throw CorruptDataError("raw-tier block size disagrees with the LAT");
        std::memcpy(out.data(), payload.data(), payload.size());
        return;
      }
      case Tier::kWarm: {
        if (!warm_.has_value()) throw CorruptDataError("warm tier lacks its code table");
        BitReader reader(image_->block_payload(index));
        warm_->decode_run(reader, out.data(), out.size());
        return;
      }
    }
    throw CorruptDataError("unknown placement-plan tier");
  }

 private:
  const core::CompressedImage* image_;
  PlacementPlan plan_;
  std::unique_ptr<core::BlockDecompressor> inner_;
  std::optional<coding::HuffmanCode> warm_;
};

/// Original-indexed view: block(i) decodes slot slot_of[i].
class LogicalDecompressor final : public core::BlockDecompressor {
 public:
  LogicalDecompressor(std::unique_ptr<core::BlockDecompressor> physical,
                      std::vector<std::uint32_t> slot_of)
      : BlockDecompressor(physical->block_count()),
        physical_(std::move(physical)),
        slot_of_(std::move(slot_of)) {}

  std::vector<std::uint8_t> block(std::size_t index) const override {
    if (index >= slot_of_.size()) throw ConfigError("block index out of range");
    return physical_->block(slot_of_[index]);
  }

  void block_into(std::size_t index, std::span<std::uint8_t> out,
                  core::DecodeScratch& scratch) const override {
    if (index >= slot_of_.size()) throw ConfigError("block index out of range");
    physical_->block_into(slot_of_[index], out, scratch);
  }

 private:
  std::unique_ptr<core::BlockDecompressor> physical_;
  std::vector<std::uint32_t> slot_of_;
};

}  // namespace

core::CompressedImage build_tiered_image(const core::BlockCodec& codec,
                                         std::span<const std::uint8_t> code,
                                         PlacementPlan plan) {
  const core::CompressedImage base = codec.compress(code);
  if (base.has_variable_blocks())
    throw ConfigError("layout tiering needs uniform address-aligned blocks");
  const std::size_t blocks = base.block_count();
  if (plan.block_count != blocks)
    throw ConfigError("placement plan block count disagrees with the image");

  // Shared warm-tier code, trained on the bytes the warm blocks actually
  // hold (a per-image bytehuff-lite table, not a global one).
  std::vector<std::uint64_t> freq(256, 0);
  bool any_warm = false;
  for (std::uint32_t b = 0; b < blocks; ++b) {
    if (plan.tiers[plan.slot_of[b]] != Tier::kWarm) continue;
    any_warm = true;
    const std::uint64_t begin = base.block_original_offset(b);
    for (std::size_t i = 0; i < base.block_original_size(b); ++i)
      ++freq[code[static_cast<std::size_t>(begin) + i]];
  }
  std::optional<coding::HuffmanCode> warm;
  plan.warm_lengths.clear();
  if (any_warm) {
    warm = coding::HuffmanCode::from_frequencies(freq);
    plan.warm_lengths.assign(warm->lengths().begin(), warm->lengths().end());
  }
  plan.validate();

  const std::vector<std::uint32_t> orig_of = plan.orig_of();
  std::vector<std::uint32_t> offsets;
  offsets.reserve(blocks + 1);
  offsets.push_back(0);
  std::vector<std::uint8_t> payload;
  for (std::uint32_t s = 0; s < blocks; ++s) {
    const std::uint32_t b = orig_of[s];
    if (base.block_original_size(b) != base.block_original_size(s))
      throw ConfigError("permutation moves a short block off the last slot");
    const std::uint64_t begin = base.block_original_offset(b);
    const std::span<const std::uint8_t> original =
        code.subspan(static_cast<std::size_t>(begin), base.block_original_size(b));
    switch (plan.tiers[s]) {
      case Tier::kHot:
        payload.insert(payload.end(), original.begin(), original.end());
        break;
      case Tier::kWarm: {
        BitWriter writer;
        for (const std::uint8_t byte : original) warm->encode(writer, byte);
        const std::vector<std::uint8_t> bits = writer.take();
        payload.insert(payload.end(), bits.begin(), bits.end());
        break;
      }
      case Tier::kCold: {
        const std::span<const std::uint8_t> compressed = base.block_payload(b);
        payload.insert(payload.end(), compressed.begin(), compressed.end());
        break;
      }
    }
    if (payload.size() > 0xFFFFFFFFull) throw ConfigError("tiered payload exceeds 4 GiB");
    offsets.push_back(static_cast<std::uint32_t>(payload.size()));
  }

  core::CompressedImage image(
      base.codec(), base.isa(), base.block_size(), base.original_size(),
      std::vector<std::uint8_t>(base.tables().begin(), base.tables().end()),
      std::move(offsets), std::move(payload));
  image.attach_layout(plan.to_blob());

  // Prove the round trip before anyone stores this image: every original
  // block must come back byte-identical through the remapped LAT.
  const std::vector<std::uint8_t> decoded = decompress_image(codec, image);
  if (decoded.size() != code.size() ||
      !std::equal(decoded.begin(), decoded.end(), code.begin()))
    throw CorruptDataError("tiered image failed its round-trip check");
  return image;
}

std::unique_ptr<core::BlockDecompressor> make_tier_decompressor(
    const core::BlockCodec& codec, const core::CompressedImage& image) {
  if (!image.has_layout()) return codec.make_decompressor(image);
  PlacementPlan plan = plan_from_image(image);
  return std::make_unique<TierDecompressor>(codec, image, std::move(plan));
}

std::unique_ptr<core::BlockDecompressor> make_logical_decompressor(
    const core::BlockCodec& codec, const core::CompressedImage& image) {
  if (!image.has_layout()) return codec.make_decompressor(image);
  PlacementPlan plan = plan_from_image(image);
  std::vector<std::uint32_t> slot_of = plan.slot_of;
  return std::make_unique<LogicalDecompressor>(
      std::make_unique<TierDecompressor>(codec, image, std::move(plan)), std::move(slot_of));
}

std::vector<std::uint8_t> decompress_image(const core::BlockCodec& codec,
                                           const core::CompressedImage& image) {
  const std::unique_ptr<core::BlockDecompressor> logical =
      make_logical_decompressor(codec, image);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(image.original_size()));
  core::DecodeScratch scratch;
  std::size_t offset = 0;
  for (std::size_t b = 0; b < image.block_count(); ++b) {
    const std::size_t size = image.block_original_size(b);
    logical->block_into(b, std::span<std::uint8_t>(out).subspan(offset, size), scratch);
    offset += size;
  }
  return out;
}

std::vector<std::uint32_t> remap_table(const core::CompressedImage& image) {
  if (!image.has_layout()) {
    std::vector<std::uint32_t> identity(image.block_count());
    for (std::size_t b = 0; b < identity.size(); ++b)
      identity[b] = static_cast<std::uint32_t>(b);
    return identity;
  }
  return plan_from_image(image).slot_of;
}

std::vector<std::uint32_t> scrub_order(const core::CompressedImage& image) {
  std::vector<std::uint32_t> order;
  order.reserve(image.block_count());
  if (!image.has_layout()) {
    for (std::size_t b = 0; b < image.block_count(); ++b)
      order.push_back(static_cast<std::uint32_t>(b));
    return order;
  }
  const PlacementPlan plan = plan_from_image(image);
  for (const Tier want : {Tier::kHot, Tier::kWarm, Tier::kCold})
    for (std::uint32_t s = 0; s < plan.block_count; ++s)
      if (plan.tiers[s] == want) order.push_back(s);
  return order;
}

}  // namespace ccomp::layout
