// Deterministic, seedable runtime fault injector.
//
// Models the bit-level failure modes of fault-prone embedded ROM/flash and
// SRAM: single-event upsets (single/multi-bit flips), stuck-at cells, and
// burst errors (a run of consecutive bits damaged by one physical event).
// Faults are applied to caller-owned byte regions — the compressed store,
// the serialized LAT, a CLB entry, or a bus transfer buffer — so the same
// injector drives every attack surface of the self-healing memory system
// (memsys/selfheal.h) and the Monte-Carlo campaigns in
// examples/fault_campaign.cpp.
//
// Everything is reproducible from the seed: the same seed over the same
// region sizes yields the same fault sequence, which is what lets CI assert
// exact survivability numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "support/rng.h"

namespace ccomp::fault {

/// Physical failure mode of one injected fault.
enum class Model : std::uint8_t {
  kSingleBit = 0,  // one random bit flips
  kMultiBit = 1,   // `bits` independent random bits flip
  kStuckAt0 = 2,   // one random bit reads as 0 regardless of contents
  kStuckAt1 = 3,   // one random bit reads as 1 regardless of contents
  kBurst = 4,      // `burst_bits` consecutive bits flip
};

std::string_view model_name(Model model);
/// Parse "single" / "multi" / "stuck0" / "stuck1" / "burst". Returns false
/// on an unknown name.
bool parse_model(std::string_view name, Model& out);

/// One fault to inject.
struct FaultSpec {
  Model model = Model::kSingleBit;
  unsigned bits = 2;        // kMultiBit: number of independent flips
  unsigned burst_bits = 4;  // kBurst: length of the damaged run
};

/// One bit-level mutation that was applied (stuck-at faults that hit a cell
/// already holding the stuck value produce no event).
struct FaultEvent {
  std::size_t byte_offset = 0;
  std::uint8_t bit_mask = 0;  // bits changed within that byte
};

/// Thread-safety contract: an injector is single-owner (its RNG state is
/// unsynchronized) — concurrent campaigns give each thread its own seeded
/// instance. Injecting into memory that other threads read concurrently is
/// the *caller's* race to rule out: the server campaign routes every
/// injection through ImageServer::with_store(), which holds the same
/// per-image mutex the decode and scrub paths take, so a fault lands either
/// entirely before or entirely after any decode — never mid-read.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Apply one fault of the given spec to `region`. Returns the mutations
  /// actually performed (empty when the region is empty or a stuck-at fault
  /// was absorbed). Deterministic in (seed, call sequence, region size).
  std::vector<FaultEvent> inject(std::span<std::uint8_t> region, const FaultSpec& spec);

  /// Convenience: flip exactly one random bit. Returns the event.
  FaultEvent flip_one(std::span<std::uint8_t> region);

  /// Undo recorded events (XOR the masks back). Only meaningful for flip
  /// models; campaigns use it to restore a store between trials.
  static void revert(std::span<std::uint8_t> region, std::span<const FaultEvent> events);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

}  // namespace ccomp::fault
