// ISA-level control-flow checks (the paper's random-access argument).
//
// A compressed-code memory system services a branch by looking the target's
// block up in the LAT and decompressing that block from its start, so the
// static property to prove is: every branch/jump target of the original
// program lands inside a block the LAT maps (MIPS), and — for variable-size
// x86 blocks — every block boundary the image chose coincides with an
// instruction boundary of the original stream, i.e. the length decoder
// re-synchronizes at each block start.
#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "isa/mips/mips.h"
#include "isa/x86/x86.h"
#include "layout/layout.h"
#include "support/error.h"
#include "verify/internal.h"
#include "verify/verify.h"

namespace ccomp::verify {
namespace {

using detail::emit;

void check_mips_flow(const core::CompressedImage& image, const VerifyOptions& opts,
                     VerifyReport& report) {
  const std::span<const std::uint8_t> code = opts.original_code;
  if (code.size() % 4 != 0) {
    emit(report, "CFG001",
         "MIPS program size " + std::to_string(code.size()) + " is not word-aligned");
    return;
  }
  const std::vector<std::uint32_t> words = mips::bytes_to_words(code);
  const std::size_t block_count = image.block_count();
  const std::uint32_t block_size = image.block_size();

  // Layout-bearing images: a target's original block resolves through the
  // plan's permutation before the LAT bound check, proving the *remapped*
  // LAT serves every branch. An unparseable plan is LAY001's finding.
  std::vector<std::uint32_t> slot_of;
  if (image.has_layout()) {
    try {
      slot_of = layout::PlacementPlan::from_blob(image.layout()).slot_of;
    } catch (const Error&) {
      slot_of.clear();
    }
    if (slot_of.size() != block_count) slot_of.clear();
  }

  auto check_target = [&](std::size_t source_word, std::uint64_t target_byte, const char* kind) {
    if (target_byte % 4 != 0) {
      emit(report, "CFG001",
           std::string(kind) + " at word " + std::to_string(source_word) + " targets offset " +
               std::to_string(target_byte) + ", not instruction-aligned");
      return;
    }
    std::size_t block = static_cast<std::size_t>(target_byte / block_size);
    if (!slot_of.empty() && block < slot_of.size()) block = slot_of[block];
    if (block >= block_count)
      emit(report, "CFG003",
           std::string(kind) + " at word " + std::to_string(source_word) + " targets block " +
               std::to_string(block) + ", LAT maps " + std::to_string(block_count));
  };

  for (std::size_t i = 0; i < words.size(); ++i) {
    const auto decoded = mips::decode(words[i]);
    if (!decoded) continue;
    const mips::OpcodeInfo& info = mips::opcode_table()[decoded->opcode];
    if (info.is_branch) {
      // PC-relative: target = pc + 4 + signext(imm16) << 2, in word units
      // target_word = i + 1 + signext(imm16).
      const std::int64_t target_word =
          static_cast<std::int64_t>(i) + 1 + static_cast<std::int16_t>(decoded->imm16);
      if (target_word < 0 || target_word >= static_cast<std::int64_t>(words.size())) {
        emit(report, "CFG002",
             "branch at word " + std::to_string(i) + " targets word " +
                 std::to_string(target_word) + ", outside the program");
        continue;
      }
      check_target(i, static_cast<std::uint64_t>(target_word) * 4, "branch");
    } else if (info.is_jump) {
      const std::uint64_t target_addr = static_cast<std::uint64_t>(decoded->imm26) << 2;
      if (target_addr < opts.mips_text_base ||
          target_addr >= opts.mips_text_base + code.size()) {
        emit(report, "CFG002",
             "jump at word " + std::to_string(i) + " targets address " +
                 std::to_string(target_addr) + ", outside the text segment");
        continue;
      }
      check_target(i, target_addr - opts.mips_text_base, "jump");
    }
  }
}

/// Relative branch displacement of the instruction at `off`, if it is one of
/// the IA-32 relative control transfers (jcc8/jcc32, jmp8/jmp32, call).
/// Returns false for everything else.
bool relative_branch(std::span<const std::uint8_t> code, std::size_t off,
                     const x86::InstrLayout& layout, std::int64_t& rel_out) {
  const std::uint8_t op = code[off + layout.prefix_len];
  bool rel8 = false;
  bool rel32 = false;
  if (layout.opcode_len == 1) {
    rel8 = (op >= 0x70 && op <= 0x7F) || op == 0xEB;
    rel32 = op == 0xE8 || op == 0xE9;
  } else if (layout.opcode_len == 2 && op == 0x0F) {
    const std::uint8_t op2 = code[off + layout.prefix_len + 1];
    rel32 = op2 >= 0x80 && op2 <= 0x8F;
  }
  if (!rel8 && !rel32) return false;
  const std::size_t imm_at = off + layout.total - layout.imm_len;
  if (rel8) {
    rel_out = static_cast<std::int8_t>(code[off + layout.total - 1]);
  } else {
    std::uint32_t v = 0;
    for (int b = 3; b >= 0; --b) v = (v << 8) | code[imm_at + static_cast<std::size_t>(b)];
    rel_out = static_cast<std::int32_t>(v);
  }
  return true;
}

void check_x86_flow(const core::CompressedImage& image, const VerifyOptions& opts,
                    VerifyReport& report) {
  const std::span<const std::uint8_t> code = opts.original_code;
  std::vector<x86::InstrLayout> layouts;
  try {
    layouts = x86::decode_all(code);
  } catch (const Error& e) {
    emit(report, "CFG004", std::string("original program does not length-decode: ") + e.what());
    return;
  }
  std::set<std::uint64_t> starts;
  std::uint64_t off = 0;
  for (const x86::InstrLayout& layout : layouts) {
    starts.insert(off);
    off += layout.total;
  }

  // The splitter's re-synchronization property: decoding block i fresh only
  // works if its first byte starts an instruction. That promise is only made
  // by the instruction-aligned (variable-block) codecs — byte-granular SAMC
  // blocks legitimately cut instructions, since the refill engine hands the
  // CPU raw bytes, not parsed instructions.
  if (image.has_variable_blocks()) {
    for (std::size_t i = 0; i < image.block_count(); ++i) {
      const std::uint64_t begin = image.block_original_offset(i);
      if (!starts.count(begin))
        emit(report, "CFG004",
             "block " + std::to_string(i) + " begins at offset " + std::to_string(begin) +
                 ", inside an instruction");
    }
  }

  // Branch-target discipline. Aggregated: one finding per kind with a count
  // and the first offending site, since a single bad jump table can
  // otherwise flood the report.
  std::size_t outside = 0;
  std::size_t misaligned = 0;
  std::int64_t first_outside = -1;
  std::int64_t first_misaligned = -1;
  off = 0;
  for (std::size_t i = 0; i < layouts.size(); ++i) {
    std::int64_t rel = 0;
    if (relative_branch(code, static_cast<std::size_t>(off), layouts[i], rel)) {
      const std::int64_t target = static_cast<std::int64_t>(off) + layouts[i].total + rel;
      if (target < 0 || target >= static_cast<std::int64_t>(code.size())) {
        if (outside++ == 0) first_outside = static_cast<std::int64_t>(off);
      } else if (!starts.count(static_cast<std::uint64_t>(target))) {
        if (misaligned++ == 0) first_misaligned = static_cast<std::int64_t>(off);
      }
    }
    off += layouts[i].total;
  }
  if (outside > 0)
    emit(report, "CFG002",
         std::to_string(outside) + " branch target(s) outside the program (first at offset " +
             std::to_string(first_outside) + ")");
  if (misaligned > 0)
    emit(report, "CFG006",
         std::to_string(misaligned) +
             " branch target(s) not on an instruction start (first at offset " +
             std::to_string(first_misaligned) + ")");
}

}  // namespace

namespace detail {

void check_control_flow(const core::CompressedImage& image, const VerifyOptions& opts,
                        VerifyReport& report) {
  if (opts.original_code.size() != image.original_size()) {
    emit(report, "CFG005",
         "supplied original code is " + std::to_string(opts.original_code.size()) +
             " bytes, image says " + std::to_string(image.original_size()));
    return;
  }
  switch (image.isa()) {
    case core::IsaKind::kMips:
      check_mips_flow(image, opts, report);
      break;
    case core::IsaKind::kX86:
      check_x86_flow(image, opts, report);
      break;
    case core::IsaKind::kRawBytes:
      break;  // no ISA-level structure to prove
  }
}

}  // namespace detail
}  // namespace ccomp::verify
