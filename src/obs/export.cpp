#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/obs.h"

namespace ccomp::obs {
namespace {

/// Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Internal names use
/// dotted paths ("memsys.cache.misses"); map everything else to '_' and
/// namespace with "ccomp_".
std::string prom_name(std::string_view name) {
  std::string out = "ccomp_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

/// Split a registered name into its base and a rendered Prometheus label
/// block. The `|k=v,k2=v2` suffix convention (see obs.h) lets call sites
/// register labelled series ("server.cache.hits|shard=3") through the same
/// flat interned-name registry.
struct LabeledName {
  std::string base;    // name up to the first '|'
  std::string labels;  // "{k=\"v\",...}" or empty
};

LabeledName parse_labels(std::string_view name) {
  const std::size_t bar = name.find('|');
  if (bar == std::string_view::npos) return LabeledName{std::string(name), {}};
  LabeledName out{std::string(name.substr(0, bar)), "{"};
  std::string_view rest = name.substr(bar + 1);
  bool first = true;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view kv = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    const std::string_view key = kv.substr(0, eq);
    const std::string_view value = eq == std::string_view::npos ? std::string_view{} : kv.substr(eq + 1);
    if (!first) out.labels += ",";
    first = false;
    // Label names share the metric-name charset; values are escaped like
    // JSON strings (Prometheus uses the same \" \\ \n escapes).
    for (const char c : key) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      out.labels.push_back(ok ? c : '_');
    }
    out.labels += "=\"" + json_escape(value) + "\"";
  }
  out.labels += "}";
  return out;
}

/// One exposition line within a grouped metric family.
struct SeriesLine {
  std::string labels;
  std::string help;
  std::uint64_t uvalue = 0;
  std::int64_t ivalue = 0;
};

/// Group series by sanitized family name, preserving first-appearance order
/// — the text format requires all samples of one family to be contiguous
/// under a single TYPE line.
template <typename T, typename GetName, typename Fill>
std::vector<std::pair<std::string, std::vector<SeriesLine>>> group_series(
    const std::vector<T>& values, GetName get_name, Fill fill) {
  std::vector<std::pair<std::string, std::vector<SeriesLine>>> groups;
  for (const T& v : values) {
    const LabeledName parsed = parse_labels(get_name(v));
    const std::string family = prom_name(parsed.base);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == family; });
    if (it == groups.end()) {
      groups.emplace_back(family, std::vector<SeriesLine>{});
      it = groups.end() - 1;
    }
    SeriesLine line;
    line.labels = parsed.labels;
    fill(v, line);
    it->second.push_back(std::move(line));
  }
  return groups;
}

}  // namespace

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  const auto counter_groups = group_series(
      snapshot.counters, [](const CounterValue& c) -> std::string_view { return c.name; },
      [](const CounterValue& c, SeriesLine& line) {
        line.help = c.help;
        line.uvalue = c.value;
      });
  for (const auto& [family, lines] : counter_groups) {
    const std::string name = family + "_total";
    for (const SeriesLine& line : lines)
      if (!line.help.empty()) {
        out += "# HELP " + name + " " + line.help + "\n";
        break;
      }
    out += "# TYPE " + name + " counter\n";
    for (const SeriesLine& line : lines) {
      out += name + line.labels + " ";
      append_u64(out, line.uvalue);
      out += "\n";
    }
  }
  const auto gauge_groups = group_series(
      snapshot.gauges, [](const GaugeValue& g) -> std::string_view { return g.name; },
      [](const GaugeValue& g, SeriesLine& line) {
        line.help = g.help;
        line.ivalue = g.value;
      });
  for (const auto& [family, lines] : gauge_groups) {
    for (const SeriesLine& line : lines)
      if (!line.help.empty()) {
        out += "# HELP " + family + " " + line.help + "\n";
        break;
      }
    out += "# TYPE " + family + " gauge\n";
    for (const SeriesLine& line : lines) {
      out += family + line.labels + " ";
      append_i64(out, line.ivalue);
      out += "\n";
    }
  }
  for (const HistogramValue& h : snapshot.histograms) {
    const std::string name = prom_name(h.name);
    if (!h.help.empty()) out += "# HELP " + name + " " + h.help + "\n";
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.bucket_counts[i];
      out += name + "_bucket{le=\"";
      append_u64(out, h.bounds[i]);
      out += "\"} ";
      append_u64(out, cumulative);
      out += "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out += "\n" + name + "_sum ";
    append_u64(out, h.sum);
    out += "\n" + name + "_count ";
    append_u64(out, h.count);
    out += "\n";
  }
  return out;
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += json_escape(snapshot.counters[i].name);
    out += "\":";
    append_u64(out, snapshot.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += json_escape(snapshot.gauges[i].name);
    out += "\":";
    append_i64(out, snapshot.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramValue& h = snapshot.histograms[i];
    if (i > 0) out += ",";
    out += "\"";
    out += json_escape(h.name);
    out += "\":{\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ",";
      append_u64(out, h.bounds[b]);
    }
    out += "],\"counts\":[";
    for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (b > 0) out += ",";
      append_u64(out, h.bucket_counts[b]);
    }
    out += "],\"count\":";
    append_u64(out, h.count);
    out += ",\"sum\":";
    append_u64(out, h.sum);
    out += "}";
  }
  out += "}}";
  return out;
}

std::string to_table(const Snapshot& snapshot) {
  std::string out;
  char line[256];
  std::size_t width = 24;
  for (const CounterValue& c : snapshot.counters) width = std::max(width, c.name.size());
  for (const GaugeValue& g : snapshot.gauges) width = std::max(width, g.name.size());
  for (const HistogramValue& h : snapshot.histograms) width = std::max(width, h.name.size());
  const int w = static_cast<int>(width);

  if (!snapshot.counters.empty()) out += "counters:\n";
  for (const CounterValue& c : snapshot.counters) {
    std::snprintf(line, sizeof line, "  %-*s %16" PRIu64 "\n", w, c.name.c_str(), c.value);
    out += line;
  }
  if (!snapshot.gauges.empty()) out += "gauges:\n";
  for (const GaugeValue& g : snapshot.gauges) {
    std::snprintf(line, sizeof line, "  %-*s %16" PRId64 "\n", w, g.name.c_str(), g.value);
    out += line;
  }
  if (!snapshot.histograms.empty()) out += "histograms:\n";
  for (const HistogramValue& h : snapshot.histograms) {
    const double mean = h.count == 0 ? 0.0 : static_cast<double>(h.sum) / static_cast<double>(h.count);
    // p50/p99 from the bucket counts: the upper bound of the bucket where
    // the cumulative count crosses the quantile (conservative estimate).
    auto quantile = [&](double q) -> double {
      if (h.count == 0) return 0.0;
      const double target = q * static_cast<double>(h.count);
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
        cumulative += h.bucket_counts[b];
        if (static_cast<double>(cumulative) >= target)
          return b < h.bounds.size() ? static_cast<double>(h.bounds[b])
                                     : static_cast<double>(h.bounds.empty() ? 0 : h.bounds.back());
      }
      return h.bounds.empty() ? 0.0 : static_cast<double>(h.bounds.back());
    };
    std::snprintf(line, sizeof line,
                  "  %-*s count=%-10" PRIu64 " mean=%-12.0f p50<=%-12.0f p99<=%-12.0f\n", w,
                  h.name.c_str(), h.count, mean, quantile(0.5), quantile(0.99));
    out += line;
  }
  return out;
}

std::string to_chrome_trace(std::span<const SpanEvent> events) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : events) {
    if (e.name == nullptr) continue;  // unwritten ring slot
    if (!first) out += ",";
    first = false;
    char buf[192];
    // trace_event timestamps are microseconds; keep ns precision in the
    // fraction. "X" = complete event (begin + duration in one record).
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"cat\":\"ccomp\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"depth\":%u}}",
                  json_escape(e.name).c_str(), static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0, e.thread, e.depth);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace ccomp::obs
