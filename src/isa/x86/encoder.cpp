#include "isa/x86/x86.h"

namespace ccomp::x86 {

void Assembler::modrm_mem(std::uint8_t reg_field, Reg base, std::int32_t disp) {
  // Memory operand [base + disp]. ESP needs a SIB byte; EBP with mod=00
  // means disp32-absolute, so [ebp] is encoded as [ebp+0] with mod=01.
  const bool need_sib = base == ESP;
  std::uint8_t mod;
  if (disp == 0 && base != EBP) {
    mod = 0;
  } else if (disp >= -128 && disp <= 127) {
    mod = 1;
  } else {
    mod = 2;
  }
  emit8(static_cast<std::uint8_t>((mod << 6) | (reg_field << 3) | (need_sib ? 4 : base)));
  if (need_sib) emit8(0x24);  // scale=0, index=none(100), base=esp
  if (mod == 1) {
    emit8(static_cast<std::uint8_t>(disp));
  } else if (mod == 2) {
    emit32(static_cast<std::uint32_t>(disp));
  }
}

void Assembler::mov_r_imm32(Reg r, std::uint32_t imm) {
  emit8(static_cast<std::uint8_t>(0xB8 + r));
  emit32(imm);
}

void Assembler::mov_r_rm(Reg r, Reg base, std::int32_t disp) {
  emit8(0x8B);
  modrm_mem(r, base, disp);
}

void Assembler::mov_rm_r(Reg base, std::int32_t disp, Reg r) {
  emit8(0x89);
  modrm_mem(r, base, disp);
}

void Assembler::mov_r_r(Reg dst, Reg src) {
  emit8(0x89);
  emit8(static_cast<std::uint8_t>(0xC0 | (src << 3) | dst));
}

void Assembler::lea(Reg r, Reg base, std::int32_t disp) {
  emit8(0x8D);
  modrm_mem(r, base, disp);
}

void Assembler::alu_r_r(Alu op, Reg dst, Reg src) {
  emit8(static_cast<std::uint8_t>(op + 0x01));  // op r/m32, r32
  emit8(static_cast<std::uint8_t>(0xC0 | (src << 3) | dst));
}

void Assembler::alu_r_rm(Alu op, Reg r, Reg base, std::int32_t disp) {
  emit8(static_cast<std::uint8_t>(op + 0x03));  // op r32, r/m32
  modrm_mem(r, base, disp);
}

void Assembler::alu_r_imm(Alu op, Reg r, std::int32_t imm) {
  const std::uint8_t ext = static_cast<std::uint8_t>(op >> 3);  // /digit = group index
  if (imm >= -128 && imm <= 127) {
    emit8(0x83);
    emit8(static_cast<std::uint8_t>(0xC0 | (ext << 3) | r));
    emit8(static_cast<std::uint8_t>(imm));
  } else {
    emit8(0x81);
    emit8(static_cast<std::uint8_t>(0xC0 | (ext << 3) | r));
    emit32(static_cast<std::uint32_t>(imm));
  }
}

void Assembler::imul_r_r(Reg dst, Reg src) {
  emit8(0x0F);
  emit8(0xAF);
  emit8(static_cast<std::uint8_t>(0xC0 | (dst << 3) | src));
}

void Assembler::shift_r_imm(bool right, Reg r, std::uint8_t count) {
  emit8(0xC1);
  emit8(static_cast<std::uint8_t>(0xC0 | ((right ? 5 : 4) << 3) | r));  // /5 shr, /4 shl
  emit8(count);
}

void Assembler::test_r_r(Reg a, Reg b) {
  emit8(0x85);
  emit8(static_cast<std::uint8_t>(0xC0 | (b << 3) | a));
}

void Assembler::push_r(Reg r) { emit8(static_cast<std::uint8_t>(0x50 + r)); }
void Assembler::pop_r(Reg r) { emit8(static_cast<std::uint8_t>(0x58 + r)); }

void Assembler::push_imm8(std::int8_t imm) {
  emit8(0x6A);
  emit8(static_cast<std::uint8_t>(imm));
}

void Assembler::inc_r(Reg r) { emit8(static_cast<std::uint8_t>(0x40 + r)); }
void Assembler::dec_r(Reg r) { emit8(static_cast<std::uint8_t>(0x48 + r)); }

void Assembler::jcc8(std::uint8_t cond, std::int8_t rel) {
  emit8(static_cast<std::uint8_t>(0x70 + (cond & 0x0F)));
  emit8(static_cast<std::uint8_t>(rel));
}

void Assembler::jcc32(std::uint8_t cond, std::int32_t rel) {
  emit8(0x0F);
  emit8(static_cast<std::uint8_t>(0x80 + (cond & 0x0F)));
  emit32(static_cast<std::uint32_t>(rel));
}

void Assembler::jmp8(std::int8_t rel) {
  emit8(0xEB);
  emit8(static_cast<std::uint8_t>(rel));
}

void Assembler::jmp32(std::int32_t rel) {
  emit8(0xE9);
  emit32(static_cast<std::uint32_t>(rel));
}

void Assembler::call_rel32(std::int32_t rel) {
  emit8(0xE8);
  emit32(static_cast<std::uint32_t>(rel));
}

void Assembler::ret() { emit8(0xC3); }
void Assembler::leave() { emit8(0xC9); }
void Assembler::nop() { emit8(0x90); }

void Assembler::movzx_r_rm8(Reg r, Reg base, std::int32_t disp) {
  emit8(0x0F);
  emit8(0xB6);
  modrm_mem(r, base, disp);
}

void Assembler::setcc(std::uint8_t cond, Reg r) {
  emit8(0x0F);
  emit8(static_cast<std::uint8_t>(0x90 + (cond & 0x0F)));
  emit8(static_cast<std::uint8_t>(0xC0 | r));
}

void Assembler::cmov(std::uint8_t cond, Reg dst, Reg src) {
  emit8(0x0F);
  emit8(static_cast<std::uint8_t>(0x40 + (cond & 0x0F)));
  emit8(static_cast<std::uint8_t>(0xC0 | (dst << 3) | src));
}

void Assembler::xchg_r_r(Reg a, Reg b) {
  emit8(0x87);
  emit8(static_cast<std::uint8_t>(0xC0 | (b << 3) | a));
}

void Assembler::fld_mem(Reg base, std::int32_t disp) {
  emit8(0xD9);
  modrm_mem(0, base, disp);
}

void Assembler::fstp_mem(Reg base, std::int32_t disp) {
  emit8(0xD9);
  modrm_mem(3, base, disp);
}

void Assembler::fadd_mem(Reg base, std::int32_t disp) {
  emit8(0xD8);
  modrm_mem(0, base, disp);
}

void Assembler::fmul_mem(Reg base, std::int32_t disp) {
  emit8(0xD8);
  modrm_mem(1, base, disp);
}

void Assembler::faddp() {
  emit8(0xDE);
  emit8(0xC1);
}

void Assembler::fmulp() {
  emit8(0xDE);
  emit8(0xC9);
}

void Assembler::db(std::span<const std::uint8_t> bytes) {
  code_.insert(code_.end(), bytes.begin(), bytes.end());
}

}  // namespace ccomp::x86
