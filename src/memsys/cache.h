// Set-associative instruction cache with true-LRU replacement.
//
// In the Wolfe/Chanin organisation the I-cache holds *decompressed* lines
// and acts as the decompression buffer: a hit costs one cycle, a miss
// triggers the refill engine. The cache is a pure hit/miss model — line
// contents are never stored because the simulator only needs the miss
// stream and the refill costs.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.h"

namespace ccomp::memsys {

struct CacheConfig {
  std::uint32_t size_bytes = 8 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t associativity = 2;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
  }
  /// Zero all counters. Nothing else zeroes a CacheStats once it is live —
  /// reloading a memory system preserves its stats unless this is called.
  void reset() { *this = CacheStats{}; }
};

class ICache {
 public:
  explicit ICache(const CacheConfig& config);

  /// Access one instruction address. Returns true on hit; on miss the line
  /// is brought in (evicting the set's LRU way).
  bool access(std::uint32_t address);

  /// Invalidate everything (keeps statistics).
  void flush();

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }

  /// Zero the hit/miss counters without touching cache contents.
  void reset_stats() { stats_.reset(); }

 private:
  struct Way {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t last_use = 0;
  };
  CacheConfig config_;
  CacheStats stats_;
  std::vector<Way> ways_;  // sets_ x associativity, row-major
  std::uint32_t sets_ = 1;
  std::uint64_t clock_ = 0;
};

}  // namespace ccomp::memsys
