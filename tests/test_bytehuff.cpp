#include "baseline/bytehuff.h"

#include <gtest/gtest.h>

#include "baseline/filecodecs.h"
#include "isa/mips/mips.h"
#include "support/rng.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace ccomp::baseline {
namespace {

std::vector<std::uint8_t> mips_code(std::uint32_t kb) {
  workload::Profile p = *workload::find_profile("ijpeg");
  p.code_kb = kb;
  return mips::words_to_bytes(workload::generate_mips(p));
}

TEST(ByteHuffman, RoundTrips) {
  const auto code = mips_code(16);
  const ByteHuffmanCodec codec;
  codec.compress_verified(code);
}

TEST(ByteHuffman, RatioIsNearKozuchWolfe) {
  // The paper reports ~0.73 for byte-Huffman on MIPS; our synthetic code
  // should land in the same neighbourhood.
  const auto code = mips_code(64);
  const ByteHuffmanCodec codec;
  const double ratio = codec.compress(code).sizes().ratio();
  EXPECT_GT(ratio, 0.55);
  EXPECT_LT(ratio, 0.85);
}

TEST(ByteHuffman, RandomDataDoesNotCompress) {
  Rng rng(81);
  std::vector<std::uint8_t> data(32768);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
  const ByteHuffmanCodec codec;
  const double ratio = codec.compress(data).sizes().ratio();
  EXPECT_GT(ratio, 0.98);
}

TEST(ByteHuffman, BlockAccessWorksAtOddSizes) {
  // Final partial block handling.
  auto code = mips_code(4);
  code.resize(code.size() - 20);
  const ByteHuffmanCodec codec;
  codec.compress_verified(code);
}

TEST(FileCodecs, CompressAndGzipRatiosOnCode) {
  const auto code = mips_code(64);
  const auto lzw = unix_compress(code);
  const auto gz = gzip_like(code);
  EXPECT_EQ(lzw.original, code.size());
  EXPECT_LT(lzw.ratio(), 0.85);
  EXPECT_LT(gz.ratio(), lzw.ratio());  // gzip beats compress on code
}

TEST(FileCodecs, ByteLevelRoundTrips) {
  const auto code = mips_code(8);
  const auto lzw = unix_compress_bytes(code);
  EXPECT_EQ(unix_decompress_bytes(lzw, code.size()), code);
  const auto gz = gzip_like_bytes(code);
  EXPECT_EQ(gzip_like_decompress(gz), code);
}

TEST(FileCodecs, EmptyInputs) {
  EXPECT_EQ(unix_compress({}).compressed, 3u);  // header only
  EXPECT_EQ(gzip_like({}).compressed, 18u + gzip_like_bytes({}).size());
}

}  // namespace
}  // namespace ccomp::baseline
