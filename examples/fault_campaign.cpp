// fault_campaign — Monte-Carlo runtime fault injection over the self-healing
// compressed memory system.
//
// For each codec (SAMC/mips, SADC/mips, byte-Huffman) the campaign builds a
// SelfHealingMemorySystem over a synthetic benchmark, then injects seeded
// faults — one per trial, surface drawn from {store payload, ECC bytes, LAT,
// CLB, bus} — and drives the recovery ladder. Every trial re-reads the
// affected block(s) and compares against the pristine program: recovered
// bytes that differ without a thrown error are *silent corruption*, the one
// outcome a compressed store must never produce, and fail the whole campaign.
//
//   fault_campaign [--trials=N] [--seed=S] [--kb=N] [--model=single|multi|
//                  stuck0|stuck1|burst|all] [--no-ecc] [--json=path]
//   fault_campaign --bench-overhead [--kb=N]
//
// Exit status: 0 = survivable (zero silent corruptions), 1 = silent
// corruption observed, 2 = usage error.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/bytehuff.h"
#include "isa/mips/mips.h"
#include "memsys/selfheal.h"
#include "obs_flags.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "support/ecc.h"
#include "support/error.h"
#include "support/faultinject.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace {

using namespace ccomp;

struct Outcomes {
  std::uint64_t trials = 0;
  std::uint64_t masked = 0;         // no observable effect (dead bits, padding)
  std::uint64_t corrected = 0;      // healed in place by SECDED (refill or scrub)
  std::uint64_t bus_recovered = 0;  // transient noise cleared by the bus retry
  std::uint64_t refetched = 0;      // healed from the golden backing copy
  std::uint64_t clb_repaired = 0;   // caught by CLB parity / LAT cross-check
  std::uint64_t escalated = 0;      // ladder exhausted; typed error thrown
  std::uint64_t silent = 0;         // wrong bytes, no error — MUST stay zero

  void accumulate(const Outcomes& other) {
    trials += other.trials;
    masked += other.masked;
    corrected += other.corrected;
    bus_recovered += other.bus_recovered;
    refetched += other.refetched;
    clb_repaired += other.clb_repaired;
    escalated += other.escalated;
    silent += other.silent;
  }
};

constexpr const char* kSurfaceNames[] = {"payload", "lat", "ecc", "clb", "bus"};
constexpr std::size_t kSurfaces = 5;

struct CodecResult {
  std::string name;
  std::size_t blocks = 0;
  Outcomes by_surface[kSurfaces];
  Outcomes totals;
  memsys::RecoveryStats stats;
};

struct CampaignConfig {
  std::uint64_t trials = 3400;  // per codec; 3 codecs ≈ 10k faults
  std::uint64_t seed = 20260805;
  std::uint32_t kb = 8;
  bool use_ecc = true;
  std::vector<fault::Model> models = {fault::Model::kSingleBit};
};

/// Map a payload byte offset to its block (golden offsets; the campaign
/// indexes faults with pristine geometry even when the stored LAT is the
/// thing it just corrupted).
std::size_t block_of_payload_offset(const core::CompressedImage& image, std::size_t offset) {
  std::size_t lo = 0, hi = image.block_count();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (image.block_offset(mid) <= offset)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

Outcomes run_trial(memsys::SelfHealingMemorySystem& sys, const core::CompressedImage& image,
                   const std::vector<std::vector<std::uint8_t>>& golden_blocks,
                   const std::vector<std::size_t>& ecc_starts, fault::FaultInjector& injector,
                   std::size_t surface, const fault::FaultSpec& spec) {
  Outcomes out;
  out.trials = 1;
  const std::size_t blocks = image.block_count();
  std::vector<std::size_t> affected;

  switch (surface) {
    case 0: {  // store payload
      const auto events = injector.inject(sys.store_payload(), spec);
      for (const fault::FaultEvent& e : events) {
        const std::size_t b = block_of_payload_offset(image, e.byte_offset);
        if (std::find(affected.begin(), affected.end(), b) == affected.end())
          affected.push_back(b);
      }
      break;
    }
    case 1: {  // LAT words
      const auto events = injector.inject(sys.store_lat_bytes(), spec);
      for (const fault::FaultEvent& e : events) {
        const std::size_t word = e.byte_offset / sizeof(std::uint32_t);
        // LAT word w bounds blocks w-1 and w.
        for (const std::size_t b : {word == 0 ? std::size_t{0} : word - 1, word})
          if (b < blocks && std::find(affected.begin(), affected.end(), b) == affected.end())
            affected.push_back(b);
      }
      break;
    }
    case 2: {  // ECC section
      const auto events = injector.inject(sys.store_ecc(), spec);
      for (const fault::FaultEvent& e : events) {
        const auto it = std::upper_bound(ecc_starts.begin(), ecc_starts.end(), e.byte_offset);
        const std::size_t b = static_cast<std::size_t>(it - ecc_starts.begin()) - 1;
        if (b < blocks && std::find(affected.begin(), affected.end(), b) == affected.end())
          affected.push_back(b);
      }
      break;
    }
    case 3: {  // CLB entry bytes — populate an entry first, then attack it
      const std::size_t b = injector.rng().next_below(blocks);
      (void)sys.read_block(b);
      injector.inject(sys.clb_bytes(), spec);
      affected.push_back(b);
      break;
    }
    case 4: {  // transient bus noise over the next transfer of block b
      const std::size_t b = injector.rng().next_below(blocks);
      const std::size_t len = image.block_payload(b).size();
      if (len > 0) injector.inject(sys.bus_buffer().subspan(0, len), spec);
      affected.push_back(b);
      break;
    }
    default:
      break;
  }

  const memsys::RecoveryStats before = sys.stats();
  bool threw = false;
  bool wrong = false;
  std::vector<std::uint8_t> read_buf;  // reused across the affected-block sweep
  for (const std::size_t b : affected) {
    try {
      sys.read_block_into(b, read_buf);
      if (read_buf != golden_blocks[b]) wrong = true;
    } catch (const FaultEscalationError&) {
      threw = true;
    }
  }
  // Latent-fault sweep: the background scrubber finds store/ECC damage the
  // reads above masked (e.g. a flip in coder padding bits).
  sys.scrub(blocks);
  const memsys::RecoveryStats& after = sys.stats();

  if (wrong) {
    ++out.silent;
  } else if (threw) {
    ++out.escalated;
  } else if (after.ecc_corrected > before.ecc_corrected ||
             after.scrub_corrected > before.scrub_corrected) {
    ++out.corrected;
  } else if (after.bus_recovered > before.bus_recovered) {
    ++out.bus_recovered;
  } else if (after.refetched > before.refetched || after.scrub_refetched > before.scrub_refetched) {
    ++out.refetched;
  } else if (after.clb_repaired > before.clb_repaired) {
    ++out.clb_repaired;
  } else {
    ++out.masked;
  }

  sys.repair_all();
  return out;
}

CodecResult run_codec(const char* label, const core::BlockCodec& codec,
                      std::span<const std::uint8_t> code, const CampaignConfig& config) {
  CodecResult result;
  result.name = label;

  const core::CompressedImage image = codec.compress(code);
  result.blocks = image.block_count();

  memsys::SelfHealingMemorySystem::Options options;
  options.cache.line_bytes = image.block_size();
  options.cache.size_bytes = image.block_size() * 256;  // 128 sets x 2 ways
  options.use_ecc = config.use_ecc;
  memsys::SelfHealingMemorySystem sys(options, codec, image);

  std::vector<std::vector<std::uint8_t>> golden_blocks(image.block_count());
  const auto dec = codec.make_decompressor(image);
  for (std::size_t b = 0; b < golden_blocks.size(); ++b) golden_blocks[b] = dec->block(b);

  std::vector<std::size_t> ecc_starts(image.block_count(), 0);
  for (std::size_t b = 0, at = 0; b < image.block_count(); ++b) {
    ecc_starts[b] = at;
    at += ecc::ecc_bytes_for(image.block_payload(b).size());
  }

  fault::FaultInjector injector(config.seed ^ std::hash<std::string>{}(result.name));
  // Surface mix: the store dominates a real die's area, so it dominates the
  // draw; the ECC surface only exists when check bytes are attached.
  const double weights[kSurfaces] = {0.55, 0.15, config.use_ecc ? 0.10 : 0.0, 0.10, 0.10};
  for (std::uint64_t t = 0; t < config.trials; ++t) {
    const std::size_t surface = injector.rng().pick_weighted(weights);
    fault::FaultSpec spec;
    spec.model = config.models[t % config.models.size()];
    const Outcomes trial =
        run_trial(sys, image, golden_blocks, ecc_starts, injector, surface, spec);
    result.by_surface[surface].accumulate(trial);
    result.totals.accumulate(trial);
  }
  result.stats = sys.stats();
  return result;
}

void print_outcomes(const char* label, const Outcomes& o) {
  std::printf(
      "  %-8s trials=%-6llu masked=%-5llu corrected=%-5llu bus=%-4llu refetched=%-5llu "
      "clb=%-4llu escalated=%-3llu silent=%llu\n",
      label, static_cast<unsigned long long>(o.trials), static_cast<unsigned long long>(o.masked),
      static_cast<unsigned long long>(o.corrected),
      static_cast<unsigned long long>(o.bus_recovered),
      static_cast<unsigned long long>(o.refetched),
      static_cast<unsigned long long>(o.clb_repaired),
      static_cast<unsigned long long>(o.escalated), static_cast<unsigned long long>(o.silent));
}

void append_json_outcomes(std::string& json, const Outcomes& o) {
  json += "{\"trials\":" + std::to_string(o.trials) + ",\"masked\":" + std::to_string(o.masked) +
          ",\"corrected\":" + std::to_string(o.corrected) +
          ",\"bus_recovered\":" + std::to_string(o.bus_recovered) +
          ",\"refetched\":" + std::to_string(o.refetched) +
          ",\"clb_repaired\":" + std::to_string(o.clb_repaired) +
          ",\"escalated\":" + std::to_string(o.escalated) +
          ",\"silent\":" + std::to_string(o.silent) + "}";
}

int cmd_campaign(const CampaignConfig& config, const char* json_path) {
  const workload::Profile profile = [&] {
    workload::Profile p = *workload::find_profile("go");
    p.code_kb = config.kb;
    return p;
  }();
  const std::vector<std::uint8_t> code = mips::words_to_bytes(workload::generate_mips(profile));

  struct Job {
    const char* label;
    std::unique_ptr<core::BlockCodec> codec;
  };
  std::vector<Job> jobs;
  jobs.push_back({"SAMC/mips", std::make_unique<samc::SamcCodec>(samc::mips_defaults())});
  jobs.push_back({"SADC/mips", std::make_unique<sadc::SadcMipsCodec>()});
  jobs.push_back({"Huffman", std::make_unique<baseline::ByteHuffmanCodec>()});

  std::printf("fault campaign: %llu trial(s)/codec, seed=%llu, %ukB benchmark, ECC %s\n",
              static_cast<unsigned long long>(config.trials),
              static_cast<unsigned long long>(config.seed), config.kb,
              config.use_ecc ? "on" : "off");

  std::vector<CodecResult> results;
  Outcomes grand;
  for (const Job& job : jobs) {
    results.push_back(run_codec(job.label, *job.codec, code, config));
    const CodecResult& r = results.back();
    std::printf("%s (%zu blocks):\n", r.name.c_str(), r.blocks);
    for (std::size_t s = 0; s < kSurfaces; ++s)
      if (r.by_surface[s].trials > 0) print_outcomes(kSurfaceNames[s], r.by_surface[s]);
    print_outcomes("total", r.totals);
    grand.accumulate(r.totals);
  }

  const std::uint64_t detected = grand.trials - grand.masked - grand.silent;
  std::printf("campaign: %llu fault(s), %llu observable, %llu silent corruption(s)\n",
              static_cast<unsigned long long>(grand.trials),
              static_cast<unsigned long long>(detected),
              static_cast<unsigned long long>(grand.silent));

  if (json_path != nullptr) {
    std::string json = "{\"seed\":" + std::to_string(config.seed) +
                       ",\"trials_per_codec\":" + std::to_string(config.trials) +
                       ",\"ecc\":" + (config.use_ecc ? std::string("true") : std::string("false")) +
                       ",\"codecs\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CodecResult& r = results[i];
      if (i > 0) json += ",";
      json += "{\"name\":\"" + r.name + "\",\"blocks\":" + std::to_string(r.blocks) +
              ",\"surfaces\":{";
      bool first = true;
      for (std::size_t s = 0; s < kSurfaces; ++s) {
        if (r.by_surface[s].trials == 0) continue;
        if (!first) json += ",";
        first = false;
        json += std::string("\"") + kSurfaceNames[s] + "\":";
        append_json_outcomes(json, r.by_surface[s]);
      }
      json += "},\"totals\":";
      append_json_outcomes(json, r.totals);
      json += "}";
    }
    json += "],\"silent_corruption\":" + std::to_string(grand.silent) +
            ",\"survived\":" + (grand.silent == 0 ? std::string("true") : std::string("false")) +
            "}\n";
    std::ofstream out(json_path, std::ios::binary);
    out << json;
    std::printf("report written to %s\n", json_path);
  }
  return grand.silent == 0 ? 0 : 1;
}

/// --bench-overhead: refill latency with the ladder engaged, ECC on vs off.
int cmd_bench_overhead(std::uint32_t kb) {
  workload::Profile profile = *workload::find_profile("go");
  profile.code_kb = kb;
  const std::vector<std::uint8_t> code = mips::words_to_bytes(workload::generate_mips(profile));
  const samc::SamcCodec codec(samc::mips_defaults());
  const core::CompressedImage image = codec.compress(code);

  std::printf("refill latency, SAMC/mips, %ukB benchmark, %zu blocks\n", kb,
              image.block_count());
  std::printf("%-22s %12s %12s\n", "path", "ecc on", "ecc off");
  for (const bool faulted : {false, true}) {
    double ns[2] = {0, 0};
    for (const bool use_ecc : {true, false}) {
      memsys::SelfHealingMemorySystem::Options options;
      options.cache.line_bytes = image.block_size();
      options.cache.size_bytes = image.block_size() * 256;
      options.use_ecc = use_ecc;
      memsys::SelfHealingMemorySystem sys(options, codec, image);
      fault::FaultInjector injector(42);
      const std::size_t blocks = image.block_count();
      const std::size_t rounds = 20;
      std::vector<std::uint8_t> read_buf;  // reused for every timed read
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t b = 0; b < blocks; ++b) {
          if (faulted) injector.flip_one(sys.store_payload());
          sys.read_block_into(b, read_buf);
        }
        sys.repair_all();
      }
      const auto stop = std::chrono::steady_clock::now();
      ns[use_ecc ? 0 : 1] =
          std::chrono::duration<double, std::nano>(stop - start).count() /
          static_cast<double>(rounds * blocks);
    }
    std::printf("%-22s %10.0fns %10.0fns\n", faulted ? "faulted (1 flip/refill)" : "clean",
                ns[0], ns[1]);
  }
  std::printf("\nECC storage overhead: 1 check byte per 8 payload bytes (+%.1f%%)\n",
              100.0 / 8.0);
  return 0;
}

void print_help(const char* prog) {
  std::printf(
      "usage: %s [--trials=N] [--seed=S] [--kb=N] [--model=single|multi|stuck0|stuck1|burst|all]\n"
      "       %*s [--no-ecc] [--json=path] [--metrics=path] [--trace=path]\n"
      "       %s --bench-overhead [--kb=N]\n",
      prog, static_cast<int>(std::strlen(prog)), "", prog);
}

}  // namespace

int main(int argc, char** argv) {
  CampaignConfig config;
  config.seed = 20260805;
  const char* json_path = nullptr;
  bool bench = false;
  examples::ObsFlags obs_flags;
  argc = examples::strip_obs_flags(argc, argv, obs_flags);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trials=", 9) == 0) {
      config.trials = static_cast<std::uint64_t>(std::atoll(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      config.seed = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--kb=", 5) == 0) {
      config.kb = static_cast<std::uint32_t>(std::atoi(argv[i] + 5));
    } else if (std::strncmp(argv[i], "--model=", 8) == 0) {
      const std::string_view name = argv[i] + 8;
      config.models.clear();
      if (name == "all") {
        config.models = {fault::Model::kSingleBit, fault::Model::kMultiBit,
                         fault::Model::kStuckAt0, fault::Model::kStuckAt1, fault::Model::kBurst};
      } else {
        fault::Model model;
        if (!fault::parse_model(name, model)) {
          std::fprintf(stderr, "unknown fault model %s\n", argv[i] + 8);
          return 2;
        }
        config.models.push_back(model);
      }
    } else if (std::strcmp(argv[i], "--no-ecc") == 0) {
      config.use_ecc = false;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--bench-overhead") == 0) {
      bench = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_help(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }
  int rc = 2;
  try {
    rc = bench ? cmd_bench_overhead(config.kb) : cmd_campaign(config, json_path);
  } catch (const ccomp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 2;
  }
  return examples::finish_obs(obs_flags, rc);
}
