#include "samc/samc_x86split.h"

#include <algorithm>

#include "coding/rangecoder.h"
#include "isa/x86/x86.h"
#include "support/error.h"

namespace ccomp::samc {
namespace {

using coding::MarkovConfig;
using coding::MarkovCursor;
using coding::MarkovModel;
using coding::RangeDecoder;
using coding::RangeEncoder;

constexpr unsigned kMaxBlockInstrs = 200;

struct SplitInstr {
  std::vector<std::uint8_t> opcode;  // prefixes + opcode byte(s)
  std::vector<std::uint8_t> modrm;   // modrm [+ sib]
  std::vector<std::uint8_t> tail;    // disp + imm
  std::size_t total() const { return opcode.size() + modrm.size() + tail.size(); }
};

MarkovConfig stream_model_config(unsigned context_bits) {
  MarkovConfig config;
  config.division = coding::StreamDivision::single(8);
  config.context_bits = context_bits;
  config.connect_across_words = true;  // byte-to-byte memory within a stream
  return config;
}

void encode_byte(RangeEncoder& encoder, MarkovCursor& cursor, std::uint8_t byte) {
  for (int b = 7; b >= 0; --b) {
    const unsigned bit = (byte >> b) & 1u;
    encoder.encode_bit(bit, cursor.prob());
    cursor.advance(bit);
  }
}

std::uint8_t decode_byte(RangeDecoder& decoder, MarkovCursor& cursor) {
  std::uint8_t byte = 0;
  for (int b = 7; b >= 0; --b) {
    const unsigned bit = decoder.decode_bit(cursor.prob());
    cursor.advance(bit);
    byte = static_cast<std::uint8_t>((byte << 1) | bit);
  }
  return byte;
}

class SplitDecompressor final : public core::BlockDecompressor {
 public:
  SplitDecompressor(const core::CompressedImage& image, MarkovModel opcode_model,
                    MarkovModel modrm_model, MarkovModel imm_model)
      : BlockDecompressor(image.block_count()),
        image_(&image),
        opcode_model_(std::move(opcode_model)),
        modrm_model_(std::move(modrm_model)),
        imm_model_(std::move(imm_model)) {}

  std::vector<std::uint8_t> block(std::size_t index) const override {
    RangeDecoder decoder(image_->block_payload(index));
    MarkovCursor op_cursor(opcode_model_);
    MarkovCursor mod_cursor(modrm_model_);
    MarkovCursor imm_cursor(imm_model_);

    std::size_t instr_count = 0;
    for (int b = 0; b < 8; ++b)
      instr_count = (instr_count << 1) | decoder.decode_bit(coding::kProbHalf);

    // Phase A: opcode stream — re-parse prefix runs and 0F escapes to find
    // each instruction's opcode-group length (the decompressor-side
    // complexity the paper warned about).
    std::vector<SplitInstr> instrs(instr_count);
    for (SplitInstr& in : instrs) {
      unsigned prefix_run = 0;
      for (;;) {
        const std::uint8_t byte = decode_byte(decoder, op_cursor);
        in.opcode.push_back(byte);
        if (x86::is_prefix_byte(byte)) {
          if (++prefix_run > 8) throw CorruptDataError("prefix run too long");
          continue;
        }
        if (x86::is_escape_byte(byte)) in.opcode.push_back(decode_byte(decoder, op_cursor));
        break;
      }
    }

    // Phase B: ModRM stream.
    struct Shape {
      unsigned disp_len = 0;
      unsigned imm_len = 0;
    };
    std::vector<Shape> shapes(instr_count);
    for (std::size_t i = 0; i < instr_count; ++i) {
      const auto cls = x86::classify_opcode(instrs[i].opcode);
      shapes[i].imm_len = cls.imm_bytes;
      if (!cls.has_modrm) continue;
      const std::uint8_t modrm = decode_byte(decoder, mod_cursor);
      instrs[i].modrm.push_back(modrm);
      std::uint8_t sib = 0;
      if (x86::modrm_has_sib(modrm)) {
        sib = decode_byte(decoder, mod_cursor);
        instrs[i].modrm.push_back(sib);
      }
      shapes[i].disp_len = x86::modrm_disp_bytes(modrm, sib);
      if (cls.group3 && ((modrm >> 3) & 7) <= 1) shapes[i].imm_len += cls.group3_imm_bytes;
    }

    // Phase C: displacement/immediate stream.
    for (std::size_t i = 0; i < instr_count; ++i)
      for (unsigned k = 0; k < shapes[i].disp_len + shapes[i].imm_len; ++k)
        instrs[i].tail.push_back(decode_byte(decoder, imm_cursor));

    std::vector<std::uint8_t> out;
    out.reserve(image_->block_original_size(index));
    for (const SplitInstr& in : instrs) {
      out.insert(out.end(), in.opcode.begin(), in.opcode.end());
      out.insert(out.end(), in.modrm.begin(), in.modrm.end());
      out.insert(out.end(), in.tail.begin(), in.tail.end());
    }
    if (out.size() != image_->block_original_size(index))
      throw CorruptDataError("SAMC-split block size mismatch");
    return out;
  }

 private:
  const core::CompressedImage* image_;
  MarkovModel opcode_model_;
  MarkovModel modrm_model_;
  MarkovModel imm_model_;
};

}  // namespace

SamcX86SplitCodec::SamcX86SplitCodec(SamcX86SplitOptions options) : options_(options) {
  if (options_.block_size == 0 || options_.block_size > 200)
    throw ConfigError("SAMC-split block size must be in [1,200]");
  if (options_.context_bits > 8) throw ConfigError("context_bits must be <= 8");
}

core::CompressedImage SamcX86SplitCodec::compress(std::span<const std::uint8_t> code) const {
  // Tokenize into the three streams.
  const std::vector<x86::InstrLayout> layouts = x86::decode_all(code);
  std::vector<SplitInstr> instrs;
  instrs.reserve(layouts.size());
  {
    std::size_t pos = 0;
    for (const x86::InstrLayout& l : layouts) {
      SplitInstr in;
      const std::size_t op_len = static_cast<std::size_t>(l.prefix_len) + l.opcode_len;
      auto at = [&](std::size_t o) { return code.begin() + static_cast<std::ptrdiff_t>(o); };
      in.opcode.assign(at(pos), at(pos + op_len));
      in.modrm.assign(at(pos + op_len), at(pos + op_len + l.modrm_len));
      in.tail.assign(at(pos + op_len + l.modrm_len), at(pos + l.total));
      instrs.push_back(std::move(in));
      pos += l.total;
    }
  }

  // Instruction-aligned blocks of ~block_size original bytes.
  std::vector<std::pair<std::size_t, std::size_t>> blocks;  // [first, last) instr
  std::vector<std::uint32_t> block_sizes;
  {
    std::size_t first = 0;
    std::uint32_t bytes = 0;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      bytes += static_cast<std::uint32_t>(instrs[i].total());
      const bool full = bytes >= options_.block_size || (i - first + 1) >= kMaxBlockInstrs;
      if (full) {
        blocks.emplace_back(first, i + 1);
        block_sizes.push_back(bytes);
        first = i + 1;
        bytes = 0;
      }
    }
    if (first < instrs.size()) {
      blocks.emplace_back(first, instrs.size());
      block_sizes.push_back(bytes);
    }
  }

  // Train one byte model per stream. Training runs over the whole stream
  // without block resets (a block's segment boundaries vary); the coder
  // still resets per block, so this only slightly blurs the statistics.
  const MarkovConfig config = stream_model_config(options_.context_bits);
  auto train_stream = [&](auto member) {
    std::vector<std::uint32_t> bytes;
    for (const SplitInstr& in : instrs)
      for (const std::uint8_t b : in.*member) bytes.push_back(b);
    return MarkovModel::train(config, bytes);
  };
  const MarkovModel opcode_model = train_stream(&SplitInstr::opcode);
  const MarkovModel modrm_model = train_stream(&SplitInstr::modrm);
  const MarkovModel imm_model = train_stream(&SplitInstr::tail);

  // Encode blocks: one coder, three model cursors, fixed phase order.
  std::vector<std::uint8_t> payload;
  std::vector<std::uint32_t> offsets;
  RangeEncoder encoder;
  for (const auto& [first, last] : blocks) {
    offsets.push_back(static_cast<std::uint32_t>(payload.size()));
    encoder.reset();
    MarkovCursor op_cursor(opcode_model);
    MarkovCursor mod_cursor(modrm_model);
    MarkovCursor imm_cursor(imm_model);
    const std::size_t count = last - first;
    for (int b = 7; b >= 0; --b)
      encoder.encode_bit(static_cast<unsigned>((count >> b) & 1), coding::kProbHalf);
    for (std::size_t i = first; i < last; ++i)
      for (const std::uint8_t b : instrs[i].opcode) encode_byte(encoder, op_cursor, b);
    for (std::size_t i = first; i < last; ++i)
      for (const std::uint8_t b : instrs[i].modrm) encode_byte(encoder, mod_cursor, b);
    for (std::size_t i = first; i < last; ++i)
      for (const std::uint8_t b : instrs[i].tail) encode_byte(encoder, imm_cursor, b);
    encoder.finish();
    const std::vector<std::uint8_t> block_bytes = encoder.take();
    payload.insert(payload.end(), block_bytes.begin(), block_bytes.end());
  }
  offsets.push_back(static_cast<std::uint32_t>(payload.size()));

  ByteSink tables;
  opcode_model.serialize(tables);
  modrm_model.serialize(tables);
  imm_model.serialize(tables);
  return core::CompressedImage(core::CodecKind::kSamcX86Split, core::IsaKind::kX86,
                               options_.block_size, code.size(), tables.take(),
                               std::move(offsets), std::move(payload),
                               std::move(block_sizes));
}

std::unique_ptr<core::BlockDecompressor> SamcX86SplitCodec::make_decompressor(
    const core::CompressedImage& image) const {
  if (image.codec() != core::CodecKind::kSamcX86Split)
    throw ConfigError("image was not produced by SAMC-split");
  ByteSource src(image.tables());
  MarkovModel opcode_model = MarkovModel::deserialize(src);
  MarkovModel modrm_model = MarkovModel::deserialize(src);
  MarkovModel imm_model = MarkovModel::deserialize(src);
  return std::make_unique<SplitDecompressor>(image, std::move(opcode_model),
                                             std::move(modrm_model), std::move(imm_model));
}

}  // namespace ccomp::samc
