// Figure 8 reproduction: compression ratios on Pentium Pro (x86) for all 18
// SPEC95 benchmarks under UNIX compress, gzip, SAMC, and SADC.
//
// Paper shape: the file compressors widen their lead on CISC code; SAMC
// (single byte stream, no field subdivision possible) trails; SADC does
// better than SAMC but stays behind gzip.
#include <cstdio>

#include <array>

#include "baseline/filecodecs.h"
#include "bench_common.h"
#include "core/report.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "support/parallel.h"
#include "workload/x86_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv);
  bench::JsonReporter json("fig8_x86", argc, argv);
  std::printf("Figure 8: compression ratios on Pentium Pro (scale=%.2f, threads=%zu)\n", scale,
              par::thread_count());

  core::RatioTable table("Fig.8 x86: compressed/original",
                         {"compress", "gzip", "SAMC", "SADC"});
  const samc::SamcCodec samc_codec(samc::x86_defaults());
  const sadc::SadcX86Codec sadc_codec;

  // One benchmark program per task (see fig7_mips.cpp).
  const std::span<const workload::Profile> profiles = workload::spec95_profiles();
  const auto rows =
      par::parallel_map(profiles.size(), [&](std::size_t i) -> std::array<double, 4> {
        const workload::Profile p = bench::scaled_profile(profiles[i], scale);
        const auto code = workload::generate_x86(p);
        return {baseline::unix_compress(code).ratio(), baseline::gzip_like(code).ratio(),
                samc_codec.compress(code).sizes().ratio(),
                sadc_codec.compress(code).sizes().ratio()};
      });
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    table.add_row(profiles[i].name, rows[i]);
    json.add(profiles[i].name, "compress_ratio", rows[i][0], "ratio");
    json.add(profiles[i].name, "gzip_ratio", rows[i][1], "ratio");
    json.add(profiles[i].name, "samc_ratio", rows[i][2], "ratio");
    json.add(profiles[i].name, "sadc_ratio", rows[i][3], "ratio");
  }
  table.print();

  const auto means = table.column_means();
  json.add("mean", "compress_ratio", means[0], "ratio");
  json.add("mean", "gzip_ratio", means[1], "ratio");
  json.add("mean", "samc_ratio", means[2], "ratio");
  json.add("mean", "sadc_ratio", means[3], "ratio");
  std::printf("\nShape checks (paper expectations):\n");
  std::printf("  gzip clearly ahead of SAMC: %.3f vs %.3f\n", means[1], means[2]);
  std::printf("  SADC between gzip and SAMC: %s\n",
              (means[3] < means[2] && means[3] > means[1]) ? "yes" : "check");
  return 0;
}
