#include "samc/samc_x86split.h"

#include <gtest/gtest.h>

#include "isa/x86/x86.h"
#include "samc/samc.h"
#include "support/rng.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

namespace ccomp::samc {
namespace {

std::vector<std::uint8_t> x86_code(const char* name, std::uint32_t kb) {
  workload::Profile p = *workload::find_profile(name);
  p.code_kb = kb;
  return workload::generate_x86(p);
}

TEST(SamcX86Split, RoundTripsGeneratedCode) {
  const auto code = x86_code("perl", 16);
  const SamcX86SplitCodec codec;
  const auto image = codec.compress_verified(code);
  EXPECT_EQ(image.codec(), core::CodecKind::kSamcX86Split);
  EXPECT_TRUE(image.has_variable_blocks());
}

TEST(SamcX86Split, BeatsByteGranularSamc) {
  // The paper's conjecture: field-level subdivision improves x86 SAMC.
  const auto code = x86_code("gcc", 64);
  const double r_split = SamcX86SplitCodec().compress(code).sizes().ratio();
  const double r_byte = SamcCodec(x86_defaults()).compress(code).sizes().ratio();
  EXPECT_LT(r_split, r_byte);
}

TEST(SamcX86Split, RandomBlockAccess) {
  const auto code = x86_code("go", 12);
  const SamcX86SplitCodec codec;
  const auto image = codec.compress(code);
  const auto dec = codec.make_decompressor(image);
  Rng rng(4242);
  for (int i = 0; i < 50; ++i) {
    const std::size_t b = rng.next_below(image.block_count());
    const auto block = dec->block(b);
    const std::size_t begin = static_cast<std::size_t>(image.block_original_offset(b));
    ASSERT_EQ(block.size(), image.block_original_size(b));
    EXPECT_TRUE(std::equal(block.begin(), block.end(),
                           code.begin() + static_cast<long>(begin)));
  }
}

TEST(SamcX86Split, HandlesPrefixesAndTwoByteOpcodes) {
  // Hand-build code exercising every parse path the decompressor re-derives.
  ccomp::x86::Assembler a;
  a.push_r(ccomp::x86::Assembler::EBP);
  a.mov_r_r(ccomp::x86::Assembler::EBP, ccomp::x86::Assembler::ESP);
  a.movzx_r_rm8(ccomp::x86::Assembler::EAX, ccomp::x86::Assembler::EBP, -1);   // 0F B6
  a.setcc(0x4, ccomp::x86::Assembler::ECX);                             // 0F 94
  a.cmov(0x5, ccomp::x86::Assembler::EAX, ccomp::x86::Assembler::EDX);         // 0F 45
  a.imul_r_r(ccomp::x86::Assembler::EAX, ccomp::x86::Assembler::EDX);          // 0F AF
  a.jcc32(0x4, 1234);                                            // 0F 84
  a.mov_r_rm(ccomp::x86::Assembler::EDX, ccomp::x86::Assembler::ESP, 8);       // SIB + disp8
  a.alu_r_imm(ccomp::x86::Assembler::CMP, ccomp::x86::Assembler::EAX, 100000); // 81 /7 id
  a.leave();
  a.ret();
  std::vector<std::uint8_t> code;
  // Repeat so the Markov models have something to learn.
  for (int i = 0; i < 64; ++i) {
    const auto& unit = a.code();
    code.insert(code.end(), unit.begin(), unit.end());
  }
  SamcX86SplitCodec().compress_verified(code);
}

TEST(SamcX86Split, ContextBitsSweepRoundTrips) {
  const auto code = x86_code("ijpeg", 8);
  for (const unsigned bits : {0u, 1u, 2u}) {
    SamcX86SplitOptions o;
    o.context_bits = bits;
    SamcX86SplitCodec(o).compress_verified(code);
  }
}

TEST(SamcX86Split, RejectsBadOptions) {
  SamcX86SplitOptions o;
  o.block_size = 0;
  EXPECT_THROW(SamcX86SplitCodec{o}, ConfigError);
  o.block_size = 201;
  EXPECT_THROW(SamcX86SplitCodec{o}, ConfigError);
}

TEST(SamcX86Split, RejectsForeignImages) {
  const auto code = x86_code("go", 8);
  const auto image = SamcCodec(x86_defaults()).compress(code);
  EXPECT_THROW(SamcX86SplitCodec().make_decompressor(image), ConfigError);
}

}  // namespace
}  // namespace ccomp::samc
