#include "coding/nibblecoder.h"

#include "support/error.h"

namespace ccomp::coding {
namespace {

constexpr std::uint64_t kTop = std::uint64_t{1} << 48;      // renorm threshold
constexpr std::uint64_t kWindowMask = (std::uint64_t{1} << 48) - 1;
constexpr unsigned kEmitShift = 48;  // byte emitted from bits 48..55

void check_quantized(Prob p0) {
  const std::uint32_t lps = p0 <= kProbHalf ? p0 : 0x10000u - p0;
  for (unsigned s = 1; s <= 8; ++s)
    if (lps == (0x10000u >> s)) return;
  throw ConfigError("nibble coder requires power-of-1/2 probabilities (shift <= 8)");
}

}  // namespace

void NibbleRangeEncoder::reset() {
  low_ = 0;
  range_ = (std::uint64_t{1} << 56) - 1;
  cache_ = 0;
  cache_size_ = 1;
  bits_in_nibble_ = 0;
}

void NibbleRangeEncoder::encode_bit(unsigned bit, Prob p0) {
  check_quantized(p0);
  const std::uint64_t bound = (range_ >> kProbBits) * p0;
  if (bit == 0) {
    range_ = bound;
  } else {
    low_ += bound;
    range_ -= bound;
  }
  if (++bits_in_nibble_ == 4) {
    bits_in_nibble_ = 0;
    while (range_ < kTop) {
      shift_low();
      range_ <<= 8;
    }
  }
}

void NibbleRangeEncoder::shift_low() {
  const std::uint64_t window = low_ & ((std::uint64_t{1} << 56) - 1);
  if (window < (std::uint64_t{0xFF} << kEmitShift) || (low_ >> 56) != 0) {
    const std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 56);
    out_.push_back(static_cast<std::uint8_t>(cache_ + carry));
    while (--cache_size_ != 0)
      out_.push_back(static_cast<std::uint8_t>(0xFF + carry));
    cache_ = static_cast<std::uint8_t>(low_ >> kEmitShift);
  }
  ++cache_size_;
  low_ = (low_ & kWindowMask) << 8;
}

void NibbleRangeEncoder::finish() {
  // Choose the representative with the most trailing zero bytes.
  const std::uint64_t top = low_ + range_;
  for (int shift = 56; shift >= 0; shift -= 8) {
    const std::uint64_t mask =
        shift >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << shift) - 1;
    const std::uint64_t candidate = (low_ + mask) & ~mask;
    if (candidate < top) {
      low_ = candidate;
      break;
    }
  }
  bits_in_nibble_ = 0;
  for (int i = 0; i < 8; ++i) shift_low();
}

std::vector<std::uint8_t> NibbleRangeEncoder::take() {
  auto bytes = std::move(out_);
  out_.clear();
  reset();
  if (!bytes.empty()) bytes.erase(bytes.begin());  // priming byte
  while (!bytes.empty() && bytes.back() == 0) bytes.pop_back();
  return bytes;
}

void NibbleRangeDecoder::reset(std::span<const std::uint8_t> data) {
  data_ = data;
  pos_ = 0;
  range_ = (std::uint64_t{1} << 56) - 1;
  code_ = 0;
  bits_in_nibble_ = 0;
  for (int i = 0; i < 7; ++i) code_ = (code_ << 8) | next_byte();
}

void NibbleRangeDecoder::renorm() {
  while (range_ < kTop) {
    code_ = ((code_ << 8) | next_byte()) & ((std::uint64_t{1} << 56) - 1);
    range_ <<= 8;
  }
}

unsigned NibbleRangeDecoder::decode_bit(Prob p0) {
  check_quantized(p0);
  const std::uint64_t bound = (range_ >> kProbBits) * p0;
  unsigned bit;
  if (code_ < bound) {
    bit = 0;
    range_ = bound;
  } else {
    bit = 1;
    code_ -= bound;
    range_ -= bound;
  }
  if (++bits_in_nibble_ == 4) {
    bits_in_nibble_ = 0;
    renorm();
  }
  return bit;
}

unsigned NibbleRangeDecoder::decode_nibble(const Prob probs[15]) {
  if (bits_in_nibble_ != 0)
    throw ConfigError("decode_nibble must start on a nibble boundary");
  // Hardware view: compute the bound of every midpoint (all 15 tree nodes)
  // from the same starting interval and compare against the code value.
  // Software does the equivalent walk; the arithmetic per node is identical
  // to what the parallel units evaluate, so the results match bit-for-bit.
  unsigned nibble = 0;
  std::size_t node = 0;  // heap index into probs
  std::uint64_t local_code = code_;
  std::uint64_t local_range = range_;
  for (int level = 0; level < 4; ++level) {
    const Prob p0 = probs[node];
    check_quantized(p0);
    const std::uint64_t bound = (local_range >> kProbBits) * p0;
    unsigned bit;
    if (local_code < bound) {
      bit = 0;
      local_range = bound;
    } else {
      bit = 1;
      local_code -= bound;
      local_range -= bound;
    }
    nibble = (nibble << 1) | bit;
    node = 2 * node + 1 + bit;
  }
  code_ = local_code;
  range_ = local_range;
  renorm();
  return nibble;
}

}  // namespace ccomp::coding
