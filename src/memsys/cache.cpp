#include "memsys/cache.h"

#include "obs/obs.h"

namespace ccomp::memsys {
namespace {

bool is_pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

ICache::ICache(const CacheConfig& config) : config_(config) {
  if (!is_pow2(config_.line_bytes) || config_.line_bytes < 4)
    throw ConfigError("cache line size must be a power of two >= 4");
  if (config_.associativity == 0) throw ConfigError("associativity must be nonzero");
  if (config_.size_bytes % (config_.line_bytes * config_.associativity) != 0)
    throw ConfigError("cache size must be divisible by line_bytes * associativity");
  sets_ = config_.size_bytes / (config_.line_bytes * config_.associativity);
  if (!is_pow2(sets_)) throw ConfigError("number of sets must be a power of two");
  ways_.assign(static_cast<std::size_t>(sets_) * config_.associativity, Way{});
}

bool ICache::access(std::uint32_t address) {
  ++stats_.accesses;
  ++clock_;
  const std::uint64_t line = address / config_.line_bytes;
  const std::uint32_t set = static_cast<std::uint32_t>(line) & (sets_ - 1);
  const std::uint64_t tag = line / sets_;
  Way* base = &ways_[static_cast<std::size_t>(set) * config_.associativity];
  Way* victim = base;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = clock_;
      CCOMP_COUNT("memsys.cache.hits", 1);
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  ++stats_.misses;
  CCOMP_COUNT("memsys.cache.misses", 1);
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = clock_;
  return false;
}

void ICache::flush() {
  for (Way& way : ways_) way.valid = false;
}

}  // namespace ccomp::memsys
