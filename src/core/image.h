// CompressedImage: the container a compressed-code memory system stores.
//
// Layout mirrors the Wolfe/Chanin organisation the paper builds on: a
// header, the codec's tables (Markov probability tables, SADC dictionary +
// Huffman tables, ...), the Line Address Table mapping block index ->
// compressed payload offset, and the concatenated per-block payloads.
//
// The LAT is serialized compactly (one absolute offset per group of 8
// blocks + one length byte per block), which is how real implementations
// keep its overhead a few percent. Ratios are reported both the way the
// paper reports them (payload + tables, no LAT — Sec. 3 "the final storage
// requirements are the encoded message and the Markov trees") and with the
// LAT charged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/serialize.h"

namespace ccomp::core {

enum class CodecKind : std::uint8_t {
  kSamc = 1,
  kSadc = 2,
  kByteHuffman = 3,
  kSamcX86Split = 4,  // SAMC with per-field stream subdivision (x86)
};
enum class IsaKind : std::uint8_t { kMips = 1, kX86 = 2, kRawBytes = 3 };

/// Where the bytes of a compressed image go.
struct SizeBreakdown {
  std::size_t original = 0;
  std::size_t payload = 0;  // compressed blocks
  std::size_t tables = 0;   // models / dictionaries / Huffman tables
  std::size_t lat = 0;      // serialized line address table

  /// Everything the embedded system stores for this image.
  std::size_t total() const { return payload + tables + lat; }

  /// Paper-equivalent compression ratio: (payload + tables) / original.
  double ratio() const {
    return original == 0 ? 0.0
                         : static_cast<double>(payload + tables) / static_cast<double>(original);
  }
  /// Ratio with the LAT charged as well (the full embedded cost).
  double ratio_with_lat() const {
    return original == 0 ? 0.0
                         : static_cast<double>(payload + tables + lat) /
                               static_cast<double>(original);
  }
};

class CompressedImage {
 public:
  CompressedImage() = default;

  /// Uniform blocks: every block covers exactly block_size original bytes
  /// (except the last). Fixed-width ISAs use this form.
  CompressedImage(CodecKind codec, IsaKind isa, std::uint32_t block_size,
                  std::uint64_t original_size, std::vector<std::uint8_t> tables,
                  std::vector<std::uint32_t> block_offsets, std::vector<std::uint8_t> payload);

  /// Variable blocks: block i covers original_sizes[i] bytes. Used by
  /// variable-length ISAs (x86), where blocks are instruction-aligned groups
  /// of roughly block_size bytes.
  CompressedImage(CodecKind codec, IsaKind isa, std::uint32_t block_size,
                  std::uint64_t original_size, std::vector<std::uint8_t> tables,
                  std::vector<std::uint32_t> block_offsets, std::vector<std::uint8_t> payload,
                  std::vector<std::uint32_t> block_original_sizes);

  CodecKind codec() const { return codec_; }
  IsaKind isa() const { return isa_; }
  /// Uncompressed bytes per block (= cache line size).
  std::uint32_t block_size() const { return block_size_; }
  std::uint64_t original_size() const { return original_size_; }
  std::size_t block_count() const {
    return block_offsets_.empty() ? 0 : block_offsets_.size() - 1;
  }

  std::span<const std::uint8_t> tables() const { return tables_; }
  std::span<const std::uint8_t> payload() const { return payload_; }

  /// Compressed payload bytes of one block.
  std::span<const std::uint8_t> block_payload(std::size_t index) const;

  /// Uncompressed byte size of one block (the last block may be short; with
  /// variable blocks, each block has its own size).
  std::size_t block_original_size(std::size_t index) const;

  /// Byte offset of block `index` within the original code.
  std::uint64_t block_original_offset(std::size_t index) const;

  bool has_variable_blocks() const { return !block_original_sizes_.empty(); }

  /// The LAT lookup the cache refill engine performs.
  std::uint32_t block_offset(std::size_t index) const { return block_offsets_.at(index); }

  /// Serialized LAT cost in bytes (group-anchored encoding).
  std::size_t lat_bytes() const;

  SizeBreakdown sizes() const;

  /// Whole-container (de)serialization. The serialized form ends with a
  /// CRC-32 trailer over every preceding container byte; deserialize verifies
  /// it (throwing ChecksumError on mismatch) unless `verify_checksum` is
  /// false, which the static verifier uses to run best-effort deep checks on
  /// an image whose trailer already failed.
  void serialize(ByteSink& sink) const;
  static CompressedImage deserialize(ByteSource& src, bool verify_checksum = true);

 private:
  CodecKind codec_ = CodecKind::kSamc;
  IsaKind isa_ = IsaKind::kRawBytes;
  std::uint32_t block_size_ = 32;
  std::uint64_t original_size_ = 0;
  std::vector<std::uint8_t> tables_;
  /// block_offsets_[i] = payload offset of block i; one extra sentinel entry
  /// equal to payload size, so block i spans [offsets[i], offsets[i+1]).
  std::vector<std::uint32_t> block_offsets_;
  std::vector<std::uint8_t> payload_;
  /// Empty for uniform blocks; else original byte count per block.
  std::vector<std::uint32_t> block_original_sizes_;
  /// Cumulative original offsets when variable (size = blocks + 1).
  std::vector<std::uint64_t> block_original_offsets_;
};

}  // namespace ccomp::core
