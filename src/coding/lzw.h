// LZW with variable-width codes (9..16 bits) and dictionary reset — the
// algorithm implemented by UNIX compress(1), reproduced here as the paper's
// file-oriented comparator. LZW is *not* block-random-access capable (codes
// point at dictionary state built from the whole prefix), which is exactly
// why the paper cannot use it in the compressed-code memory system; it only
// bounds what a file compressor achieves.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ccomp::coding {

struct LzwOptions {
  unsigned min_code_bits = 9;
  unsigned max_code_bits = 16;
};

/// Compress a whole buffer. Output is self-contained (includes nothing but
/// the code stream; options must match on decompression).
std::vector<std::uint8_t> lzw_compress(std::span<const std::uint8_t> input,
                                       const LzwOptions& options = {});

/// Inverse of lzw_compress. `original_size` bounds the output (the container
/// stores it); throws CorruptDataError on malformed input.
std::vector<std::uint8_t> lzw_decompress(std::span<const std::uint8_t> input,
                                         std::size_t original_size,
                                         const LzwOptions& options = {});

}  // namespace ccomp::coding
