// Shared helpers for the verifier's translation units (not installed API).
#pragma once

#include <string>
#include <string_view>

#include "verify/verify.h"

namespace ccomp::verify::detail {

/// Catalogue severity of a check ID (kError for unknown IDs, defensively).
Severity severity_of(std::string_view check);

/// Record a finding with its catalogue severity.
void emit(VerifyReport& report, std::string_view check, std::string message);

}  // namespace ccomp::verify::detail
