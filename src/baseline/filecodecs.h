// File-oriented comparators: UNIX compress (LZW) and a gzip-like
// LZ77+Huffman compressor. Neither supports block random access — they are
// the upper-bound references in Figs. 7/8, not candidates for the
// compressed-code memory system.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace ccomp::baseline {

struct FileCompressionResult {
  std::size_t original;
  std::size_t compressed;
  double ratio() const {
    return original == 0 ? 0.0
                         : static_cast<double>(compressed) / static_cast<double>(original);
  }
};

/// UNIX compress(1) equivalent (LZW, 9..16-bit codes, block mode).
FileCompressionResult unix_compress(std::span<const std::uint8_t> code);
std::vector<std::uint8_t> unix_compress_bytes(std::span<const std::uint8_t> code);
std::vector<std::uint8_t> unix_decompress_bytes(std::span<const std::uint8_t> compressed,
                                                std::size_t original_size);

/// gzip-like (LZ77 32 KiB window + canonical Huffman).
FileCompressionResult gzip_like(std::span<const std::uint8_t> code);
std::vector<std::uint8_t> gzip_like_bytes(std::span<const std::uint8_t> code);
std::vector<std::uint8_t> gzip_like_decompress(std::span<const std::uint8_t> compressed);

}  // namespace ccomp::baseline
