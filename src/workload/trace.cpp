#include "workload/trace.h"

#include <algorithm>

#include "support/error.h"
#include "support/rng.h"

namespace ccomp::workload {

std::vector<std::uint32_t> generate_trace(const Profile& profile,
                                          std::span<const std::uint32_t> function_starts,
                                          std::size_t code_words,
                                          const TraceOptions& options) {
  if (function_starts.empty() || code_words == 0)
    throw ConfigError("trace generation needs a non-empty program");
  Rng rng(profile.seed * 0x7E57ACEull + 17);

  // Function extents.
  struct Func {
    std::uint32_t begin;
    std::uint32_t end;
  };
  std::vector<Func> funcs;
  funcs.reserve(function_starts.size());
  for (std::size_t i = 0; i < function_starts.size(); ++i) {
    const std::uint32_t begin = function_starts[i];
    const std::uint32_t end = i + 1 < function_starts.size()
                                  ? function_starts[i + 1]
                                  : static_cast<std::uint32_t>(code_words);
    if (end > begin) funcs.push_back({begin, end});
  }
  if (funcs.empty()) throw ConfigError("no non-empty functions");

  // Hot set: a random subset of functions receives ~90% of visits.
  std::vector<std::size_t> order(funcs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i-- > 1;)
    std::swap(order[i], order[rng.next_below(i + 1)]);
  const std::size_t hot_count =
      std::max<std::size_t>(1, static_cast<std::size_t>(
          static_cast<double>(funcs.size()) * options.hot_fraction));

  std::vector<std::uint32_t> trace;
  trace.reserve(options.length);
  auto emit = [&](std::uint32_t word_index) {
    trace.push_back(options.base_address + word_index * 4);
  };

  while (trace.size() < options.length) {
    // Pick a function: 90% from the hot set (skewed), else anywhere.
    std::size_t fi;
    if (rng.chance(0.9)) {
      fi = order[rng.pick_skewed(hot_count, 0.8)];
    } else {
      fi = order[rng.next_below(funcs.size())];
    }
    const Func& f = funcs[fi];
    const std::uint32_t flen = f.end - f.begin;

    // Execute the function: sequential sweep with inner loops.
    std::uint32_t pc = f.begin;
    while (pc < f.end && trace.size() < options.length) {
      emit(pc++);
      // Occasionally enter a loop: re-execute a recent short range.
      if (flen > 8 && pc > f.begin + 4 && rng.chance(0.08)) {
        const std::uint32_t body = static_cast<std::uint32_t>(
            2 + rng.next_below(std::min<std::uint32_t>(16, pc - f.begin - 1)));
        // Loop trip counts grow with loop_intensity (FP codes loop harder).
        const std::uint64_t max_trips =
            4 + static_cast<std::uint64_t>(profile.loop_intensity * 60.0);
        const std::uint64_t trips = 1 + rng.next_below(max_trips);
        for (std::uint64_t t = 0; t < trips && trace.size() < options.length; ++t)
          for (std::uint32_t w = pc - body; w < pc && trace.size() < options.length; ++w)
            emit(w);
      }
      // Early exit (branch out of the function).
      if (rng.chance(0.002)) break;
    }
  }
  return trace;
}

}  // namespace ccomp::workload
