#include "support/serialize.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace ccomp {
namespace {

TEST(ByteSink, PrimitivesAreLittleEndian) {
  ByteSink sink;
  sink.u16(0x1234);
  sink.u32(0xDEADBEEF);
  sink.u64(0x0102030405060708ull);
  const auto bytes = sink.take();
  ASSERT_EQ(bytes.size(), 14u);
  EXPECT_EQ(bytes[0], 0x34);
  EXPECT_EQ(bytes[1], 0x12);
  EXPECT_EQ(bytes[2], 0xEF);
  EXPECT_EQ(bytes[5], 0xDE);
  EXPECT_EQ(bytes[6], 0x08);
  EXPECT_EQ(bytes[13], 0x01);
}

TEST(ByteSource, ReadsBackPrimitives) {
  ByteSink sink;
  sink.u8(0xAB);
  sink.u16(0x1234);
  sink.u32(0xCAFEBABE);
  sink.u64(0xFFFFFFFFFFFFFFFFull);
  const auto bytes = sink.take();
  ByteSource src(bytes);
  EXPECT_EQ(src.u8(), 0xAB);
  EXPECT_EQ(src.u16(), 0x1234);
  EXPECT_EQ(src.u32(), 0xCAFEBABEu);
  EXPECT_EQ(src.u64(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_TRUE(src.at_end());
}

TEST(Varint, SmallValuesAreOneByte) {
  ByteSink sink;
  sink.varint(0);
  sink.varint(127);
  EXPECT_EQ(sink.size(), 2u);
}

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,      1,        127,        128,
                                  16383,  16384,    0xFFFFFFFF, 0x100000000ull,
                                  0xFFFFFFFFFFFFFFFFull};
  ByteSink sink;
  for (const auto v : values) sink.varint(v);
  const auto bytes = sink.take();
  ByteSource src(bytes);
  for (const auto v : values) EXPECT_EQ(src.varint(), v);
}

TEST(Varint, RandomRoundTrip) {
  Rng rng(99);
  ByteSink sink;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix magnitudes so all length classes are hit.
    const std::uint64_t v = rng.next_u64() >> rng.next_below(64);
    values.push_back(v);
    sink.varint(v);
  }
  const auto bytes = sink.take();
  ByteSource src(bytes);
  for (const auto v : values) EXPECT_EQ(src.varint(), v);
}

TEST(ByteSource, TruncationThrows) {
  ByteSink sink;
  sink.u16(7);
  const auto bytes = sink.take();
  ByteSource src(bytes);
  EXPECT_THROW(src.u32(), CorruptDataError);
}

TEST(SizedBytes, RoundTrips) {
  ByteSink sink;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  sink.sized_bytes(payload);
  sink.sized_bytes({});
  const auto bytes = sink.take();
  ByteSource src(bytes);
  EXPECT_EQ(src.sized_bytes(), payload);
  EXPECT_TRUE(src.sized_bytes().empty());
}

TEST(ByteSource, OverlongVarintThrows) {
  std::vector<std::uint8_t> bytes(11, 0x80);
  ByteSource src(bytes);
  EXPECT_THROW(src.varint(), CorruptDataError);
}

}  // namespace
}  // namespace ccomp
