#include "memsys/sim.h"

#include <optional>

#include "layout/layout.h"

namespace ccomp::memsys {

SimResult simulate_uncompressed(const SimConfig& config,
                                std::span<const std::uint32_t> trace) {
  ICache cache(config.cache);
  SimResult result;
  const std::uint64_t refill_cycles =
      config.refill.memory_latency +
      static_cast<std::uint64_t>(config.cache.line_bytes) * config.refill.cycles_per_byte;
  const double refill_energy =
      config.energy.memory_access_nj +
      config.energy.memory_byte_nj * static_cast<double>(config.cache.line_bytes);
  for (const std::uint32_t address : trace) {
    ++result.accesses;
    result.fetch_energy_nj += config.energy.cache_hit_nj;
    if (cache.access(address)) {
      result.fetch_cycles += 1;
    } else {
      ++result.misses;
      result.fetch_cycles += 1 + refill_cycles;
      result.fetch_energy_nj += refill_energy;
    }
  }
  return result;
}

SimResult simulate_compressed(const SimConfig& config, std::span<const std::uint32_t> trace,
                              const core::CompressedImage& image) {
  if (image.block_size() != config.cache.line_bytes)
    throw ConfigError("image block size must equal the cache line size");
  if (image.has_variable_blocks())
    throw ConfigError("the memory-system model needs address-aligned (uniform) blocks");

  ICache cache(config.cache);
  Clb clb(config.clb);
  SimResult result;
  const std::size_t blocks = image.block_count();

  // Layout-bearing images: addresses index original blocks, storage lives
  // in slot space, and each slot's tier sets the decode throughput (raw
  // copies free, warm Huffman ~8 bits/cycle, cold = the inner engine).
  std::optional<layout::PlacementPlan> plan;
  if (image.has_layout()) plan = layout::plan_from_image(image);

  for (const std::uint32_t address : trace) {
    ++result.accesses;
    result.fetch_energy_nj += config.energy.cache_hit_nj;
    if (cache.access(address)) {
      result.fetch_cycles += 1;
      continue;
    }
    ++result.misses;
    std::uint64_t cycles = 1 + config.refill.memory_latency;
    double energy = config.energy.memory_access_nj;

    std::size_t block = address / image.block_size();
    layout::Tier tier = layout::Tier::kCold;
    std::size_t compressed_bytes = config.cache.line_bytes;  // fallback off the image
    std::size_t original_bytes = config.cache.line_bytes;
    if (block < blocks) {
      if (plan.has_value()) {
        block = plan->slot_of[block];
        tier = plan->tiers[block];
      }
      compressed_bytes = image.block_payload(block).size();
      original_bytes = image.block_original_size(block);
    }

    // LAT lookup: free on CLB hit, one extra memory access on miss.
    if (config.use_clb) {
      ++result.clb_lookups;
      if (!clb.access(block)) {
        ++result.clb_misses;
        cycles += config.refill.memory_latency;
        energy += config.energy.memory_access_nj;
      }
    } else {
      cycles += config.refill.memory_latency;  // every miss reads the LAT
      energy += config.energy.memory_access_nj;
    }

    // Transfer the compressed block, then decompress it into the cache.
    // Raw-tier blocks stream straight into the line (no decode engine at
    // all); warm-tier blocks run the table-lookup Huffman path (~8 bits per
    // cycle, the plain-Huffman figure the RefillModel comment cites).
    cycles += static_cast<std::uint64_t>(compressed_bytes) * config.refill.cycles_per_byte;
    energy += config.energy.memory_byte_nj * static_cast<double>(compressed_bytes);
    if (tier != layout::Tier::kHot) {
      const std::uint32_t rate =
          tier == layout::Tier::kWarm ? 8 : config.refill.decode_bits_per_cycle;
      cycles += config.refill.decode_startup;
      const std::uint64_t bits = static_cast<std::uint64_t>(original_bytes) * 8;
      cycles += (bits + rate - 1) / rate;
      energy += config.energy.decode_byte_nj * static_cast<double>(original_bytes);
    }

    result.fetch_cycles += cycles;
    result.fetch_energy_nj += energy;
  }
  return result;
}

}  // namespace ccomp::memsys
