// Figure 7 reproduction: compression ratios on MIPS for all 18 SPEC95
// benchmarks under UNIX compress, gzip, SAMC, and SADC.
//
// Paper shape: gzip best on most benchmarks; SAMC comparable to compress;
// SADC 4-6% (absolute) better than SAMC and close to gzip on some
// benchmarks. Short bar = good compression.
#include <cstdio>

#include <array>

#include "baseline/filecodecs.h"
#include "bench_common.h"
#include "core/report.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "support/parallel.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv);
  bench::JsonReporter json("fig7_mips", argc, argv);
  std::printf("Figure 7: compression ratios on MIPS (scale=%.2f, threads=%zu)\n", scale,
              par::thread_count());

  core::RatioTable table("Fig.7 MIPS: compressed/original",
                         {"compress", "gzip", "SAMC", "SADC"});
  const samc::SamcCodec samc_codec(samc::mips_defaults());
  const sadc::SadcMipsCodec sadc_codec;

  // One benchmark program per task; rows land in figure order regardless of
  // which finishes first (each generate/compress chain is deterministic).
  const std::span<const workload::Profile> profiles = workload::spec95_profiles();
  const auto rows =
      par::parallel_map(profiles.size(), [&](std::size_t i) -> std::array<double, 4> {
        const workload::Profile p = bench::scaled_profile(profiles[i], scale);
        const auto code = mips::words_to_bytes(workload::generate_mips(p));
        return {baseline::unix_compress(code).ratio(), baseline::gzip_like(code).ratio(),
                samc_codec.compress(code).sizes().ratio(),
                sadc_codec.compress(code).sizes().ratio()};
      });
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    table.add_row(profiles[i].name, rows[i]);
    json.add(profiles[i].name, "compress_ratio", rows[i][0], "ratio");
    json.add(profiles[i].name, "gzip_ratio", rows[i][1], "ratio");
    json.add(profiles[i].name, "samc_ratio", rows[i][2], "ratio");
    json.add(profiles[i].name, "sadc_ratio", rows[i][3], "ratio");
  }
  table.print();

  const auto means = table.column_means();
  json.add("mean", "compress_ratio", means[0], "ratio");
  json.add("mean", "gzip_ratio", means[1], "ratio");
  json.add("mean", "samc_ratio", means[2], "ratio");
  json.add("mean", "sadc_ratio", means[3], "ratio");
  std::printf("\nShape checks (paper expectations):\n");
  std::printf("  SADC better than SAMC by %.1f%% absolute (paper: 4-6%%)\n",
              (means[2] - means[3]) * 100.0);
  std::printf("  gzip best overall: %s\n",
              (means[1] < means[0] && means[1] < means[2] && means[1] < means[3]) ? "yes"
                                                                                  : "NO");
  std::printf("  SAMC ~ compress: |delta| = %.3f\n", means[2] - means[0]);
  return 0;
}
