#include "core/mapped.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "support/crc32.h"
#include "support/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define CCOMP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define CCOMP_HAVE_MMAP 0
#include <cstdio>
#endif

namespace ccomp::core {

namespace {

// Same flag bits as the classic container header (core/image.cpp).
constexpr std::uint8_t kFlagVariableBlocks = 0x01;
constexpr std::uint8_t kFlagHasEcc = 0x02;
constexpr std::uint8_t kFlagHasCertificate = 0x04;
constexpr std::uint8_t kFlagHasLayout = 0x08;
constexpr std::uint8_t kKnownFlags =
    kFlagVariableBlocks | kFlagHasEcc | kFlagHasCertificate | kFlagHasLayout;

constexpr std::size_t kHeaderBytes = 28;        // magic..section_count
constexpr std::size_t kSectionEntryBytes = 32;  // id,res,offset,size,crc,res
constexpr std::uint32_t kMinAlignment = 16;
constexpr std::uint32_t kMaxAlignment = 1u << 20;
constexpr std::uint32_t kMaxSections = 64;

std::uint32_t rd_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t rd_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(rd_u32(p)) | (static_cast<std::uint64_t>(rd_u32(p + 4)) << 32);
}

std::uint64_t align_up(std::uint64_t value, std::uint64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

bool valid_alignment(std::uint32_t a) {
  return a >= kMinAlignment && a <= kMaxAlignment && (a & (a - 1)) == 0;
}

}  // namespace

bool is_aligned_container(std::span<const std::uint8_t> data) {
  return data.size() >= 4 && rd_u32(data.data()) == kAlignedMagic;
}

// --- serialization --------------------------------------------------------

void serialize_aligned(const CompressedImage& image, ByteSink& sink, std::uint32_t alignment) {
  if (!valid_alignment(alignment))
    throw ConfigError("aligned-container alignment must be a power of two in [16, 1 MiB]");

  // Gather the sections present, in id order (which is also offset order).
  const std::size_t blocks = image.block_count();
  std::vector<std::uint8_t> lat;
  lat.reserve((blocks + 1) * 4);
  for (std::size_t i = 0; i <= blocks; ++i) {
    const std::uint32_t off = image.block_offset(i);
    lat.push_back(static_cast<std::uint8_t>(off));
    lat.push_back(static_cast<std::uint8_t>(off >> 8));
    lat.push_back(static_cast<std::uint8_t>(off >> 16));
    lat.push_back(static_cast<std::uint8_t>(off >> 24));
  }
  std::vector<std::uint8_t> block_sizes;
  if (image.has_variable_blocks()) {
    block_sizes.reserve(blocks * 4);
    for (std::size_t i = 0; i < blocks; ++i) {
      const auto s = static_cast<std::uint32_t>(image.block_original_size(i));
      block_sizes.push_back(static_cast<std::uint8_t>(s));
      block_sizes.push_back(static_cast<std::uint8_t>(s >> 8));
      block_sizes.push_back(static_cast<std::uint8_t>(s >> 16));
      block_sizes.push_back(static_cast<std::uint8_t>(s >> 24));
    }
  }

  struct Pending {
    SectionId id;
    std::span<const std::uint8_t> bytes;
  };
  std::vector<Pending> pending;
  pending.push_back({SectionId::kLat, lat});
  if (image.has_variable_blocks()) pending.push_back({SectionId::kSizes, block_sizes});
  pending.push_back({SectionId::kTables, image.tables()});
  pending.push_back({SectionId::kPayload, image.payload()});
  if (image.has_ecc()) pending.push_back({SectionId::kEcc, image.ecc()});
  if (image.has_certificate()) pending.push_back({SectionId::kCert, image.certificate()});
  if (image.has_layout()) pending.push_back({SectionId::kLayout, image.layout()});

  // Lay sections out back to back on alignment boundaries, after the header
  // block (header + table + header CRC).
  const std::size_t header_total =
      kHeaderBytes + pending.size() * kSectionEntryBytes + 4 /* header CRC */;
  std::vector<std::uint64_t> offsets(pending.size());
  std::uint64_t cursor = align_up(header_total, alignment);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    offsets[i] = cursor;
    cursor = align_up(cursor + pending[i].bytes.size(), alignment);
  }

  const std::size_t start = sink.size();
  sink.u32(kAlignedMagic);
  sink.u8(static_cast<std::uint8_t>(image.codec()));
  sink.u8(static_cast<std::uint8_t>(image.isa()));
  std::uint8_t flags = 0;
  if (image.has_variable_blocks()) flags |= kFlagVariableBlocks;
  if (image.has_ecc()) flags |= kFlagHasEcc;
  if (image.has_certificate()) flags |= kFlagHasCertificate;
  if (image.has_layout()) flags |= kFlagHasLayout;
  sink.u8(flags);
  sink.u8(0);  // reserved
  sink.u32(image.block_size());
  sink.u64(image.original_size());
  sink.u32(alignment);
  sink.u32(static_cast<std::uint32_t>(pending.size()));
  for (std::size_t i = 0; i < pending.size(); ++i) {
    sink.u32(static_cast<std::uint32_t>(pending[i].id));
    sink.u32(0);  // reserved
    sink.u64(offsets[i]);
    sink.u64(pending[i].bytes.size());
    sink.u32(crc32(pending[i].bytes));
    sink.u32(0);  // reserved
  }
  sink.u32(crc32(sink.view().subspan(start)));

  // Zero padding up to each section start, then the section bytes.
  std::vector<std::uint8_t> zeros;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const std::size_t written = sink.size() - start;
    const std::size_t pad = static_cast<std::size_t>(offsets[i]) - written;
    zeros.assign(pad, 0);
    sink.bytes(zeros);
    sink.bytes(pending[i].bytes);
  }
}

// --- MappedImage ----------------------------------------------------------

MappedImage MappedImage::open(const std::string& path) {
  MappedImage img;
#if CCOMP_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw Error("cannot open image file: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw Error("cannot stat image file: " + path);
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  void* base = len == 0 ? MAP_FAILED : ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  if (base != MAP_FAILED) {
    ::close(fd);
    img.map_base_ = base;
    img.map_len_ = len;
    img.data_ = {static_cast<const std::uint8_t*>(base), len};
  } else {
    // Heap fallback: e.g. a filesystem that refuses mmap. Same semantics,
    // just no page-cache sharing.
    img.owned_.resize(len);
    std::size_t got = 0;
    while (got < len) {
      const ssize_t n = ::read(fd, img.owned_.data() + got, len - got);
      if (n <= 0) {
        ::close(fd);
        throw Error("cannot read image file: " + path);
      }
      got += static_cast<std::size_t>(n);
    }
    ::close(fd);
    img.data_ = img.owned_;
  }
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw Error("cannot open image file: " + path);
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (len < 0) {
    std::fclose(f);
    throw Error("cannot stat image file: " + path);
  }
  img.owned_.resize(static_cast<std::size_t>(len));
  if (!img.owned_.empty() && std::fread(img.owned_.data(), 1, img.owned_.size(), f) != img.owned_.size()) {
    std::fclose(f);
    throw Error("cannot read image file: " + path);
  }
  std::fclose(f);
  img.data_ = img.owned_;
#endif
  img.parse();
  return img;
}

MappedImage::MappedImage(std::span<const std::uint8_t> data) {
  data_ = data;
  parse();
}

MappedImage::~MappedImage() {
#if CCOMP_HAVE_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
#endif
}

MappedImage::MappedImage(MappedImage&& other) noexcept
    : data_(other.data_),
      owned_(std::move(other.owned_)),
      map_base_(std::exchange(other.map_base_, nullptr)),
      map_len_(std::exchange(other.map_len_, 0)),
      codec_(other.codec_),
      isa_(other.isa_),
      flags_(other.flags_),
      block_size_(other.block_size_),
      original_size_(other.original_size_),
      alignment_(other.alignment_),
      sections_(std::move(other.sections_)),
      verified_(std::move(other.verified_)) {
  if (!owned_.empty()) data_ = owned_;  // span must chase the moved vector
  other.data_ = {};
}

MappedImage& MappedImage::operator=(MappedImage&& other) noexcept {
  if (this == &other) return *this;
#if CCOMP_HAVE_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
#endif
  data_ = other.data_;
  owned_ = std::move(other.owned_);
  map_base_ = std::exchange(other.map_base_, nullptr);
  map_len_ = std::exchange(other.map_len_, 0);
  codec_ = other.codec_;
  isa_ = other.isa_;
  flags_ = other.flags_;
  block_size_ = other.block_size_;
  original_size_ = other.original_size_;
  alignment_ = other.alignment_;
  sections_ = std::move(other.sections_);
  verified_ = std::move(other.verified_);
  if (!owned_.empty()) data_ = owned_;
  other.data_ = {};
  return *this;
}

void MappedImage::parse() {
  if (data_.size() < kHeaderBytes + 4) throw CorruptDataError("aligned container truncated");
  const std::uint8_t* p = data_.data();
  if (rd_u32(p) != kAlignedMagic) throw CorruptDataError("bad aligned-container magic");
  codec_ = static_cast<CodecKind>(p[4]);
  isa_ = static_cast<IsaKind>(p[5]);
  flags_ = p[6];
  if ((flags_ & ~kKnownFlags) != 0)
    throw CorruptDataError("unknown aligned-container header flags");
  if (p[7] != 0) throw CorruptDataError("nonzero reserved header byte");
  block_size_ = rd_u32(p + 8);
  if (block_size_ == 0) throw CorruptDataError("block_size must be nonzero");
  original_size_ = rd_u64(p + 12);
  alignment_ = rd_u32(p + 20);
  if (!valid_alignment(alignment_))
    throw CorruptDataError("aligned-container alignment must be a power of two in [16, 1 MiB]");
  const std::uint32_t count = rd_u32(p + 24);
  if (count == 0 || count > kMaxSections)
    throw CorruptDataError("aligned-container section count out of range");
  const std::size_t header_total = kHeaderBytes + count * kSectionEntryBytes + 4;
  if (data_.size() < header_total) throw CorruptDataError("aligned container truncated");
  const std::uint32_t stored_crc = rd_u32(p + header_total - 4);
  if (stored_crc != crc32(data_.first(header_total - 4)))
    throw ChecksumError("aligned-container header CRC mismatch");

  sections_.clear();
  sections_.reserve(count);
  std::uint64_t min_offset = align_up(header_total, alignment_);
  std::uint32_t prev_id = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t* e = p + kHeaderBytes + i * kSectionEntryBytes;
    Section s;
    const std::uint32_t raw_id = rd_u32(e);
    if (raw_id <= prev_id || raw_id > static_cast<std::uint32_t>(SectionId::kLayout))
      throw CorruptDataError("aligned-container section ids must be unique, ascending, known");
    prev_id = raw_id;
    s.id = static_cast<SectionId>(raw_id);
    if (rd_u32(e + 4) != 0) throw CorruptDataError("nonzero reserved section field");
    s.offset = rd_u64(e + 8);
    s.size = rd_u64(e + 16);
    s.crc = rd_u32(e + 24);
    if (rd_u32(e + 28) != 0) throw CorruptDataError("nonzero reserved section field");
    if (s.offset % alignment_ != 0)
      throw CorruptDataError("section offset violates the declared alignment");
    if (s.offset < min_offset || s.size > data_.size() || s.offset > data_.size() - s.size)
      throw CorruptDataError("section extent outside the container");
    min_offset = align_up(s.offset + s.size, alignment_);
    sections_.push_back(s);
  }
  verified_ = std::make_unique<std::atomic<std::uint8_t>[]>(count);
  for (std::uint32_t i = 0; i < count; ++i) verified_[i].store(0, std::memory_order_relaxed);
}

bool MappedImage::has_section(SectionId id) const {
  return std::any_of(sections_.begin(), sections_.end(),
                     [&](const Section& s) { return s.id == id; });
}

std::span<const std::uint8_t> MappedImage::section(SectionId id) const {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Section& s = sections_[i];
    if (s.id != id) continue;
    const auto bytes =
        data_.subspan(static_cast<std::size_t>(s.offset), static_cast<std::size_t>(s.size));
    // Lazy integrity: verify the section CRC once, on first access. Relaxed
    // is enough — the flag only gates re-verification, the bytes themselves
    // are immutable.
    if (verified_[i].load(std::memory_order_relaxed) == 0) {
      if (crc32(bytes) != s.crc) throw ChecksumError("aligned-container section CRC mismatch");
      verified_[i].store(1, std::memory_order_relaxed);
    }
    return bytes;
  }
  throw ConfigError("aligned container has no such section");
}

CompressedImage MappedImage::view_image() const {
  const auto lat = section(SectionId::kLat);
  if (lat.size() < 4 || lat.size() % 4 != 0)
    throw CorruptDataError("LAT section size must be a nonzero multiple of 4");
  std::vector<std::uint32_t> offsets(lat.size() / 4);
  for (std::size_t i = 0; i < offsets.size(); ++i) offsets[i] = rd_u32(lat.data() + i * 4);

  std::vector<std::uint32_t> original_sizes;
  if ((flags_ & kFlagVariableBlocks) != 0) {
    const auto sizes = section(SectionId::kSizes);
    if (sizes.size() != (offsets.size() - 1) * 4)
      throw CorruptDataError("SIZES section inconsistent with the LAT block count");
    original_sizes.resize(offsets.size() - 1);
    for (std::size_t i = 0; i < original_sizes.size(); ++i)
      original_sizes[i] = rd_u32(sizes.data() + i * 4);
  }

  const auto tables = section(SectionId::kTables);
  const auto payload = section(SectionId::kPayload);
  std::span<const std::uint8_t> ecc, cert, layout;
  if ((flags_ & kFlagHasEcc) != 0) ecc = section(SectionId::kEcc);
  if ((flags_ & kFlagHasCertificate) != 0) {
    cert = section(SectionId::kCert);
    if (cert.empty()) throw CorruptDataError("empty certificate section");
  }
  if ((flags_ & kFlagHasLayout) != 0) {
    layout = section(SectionId::kLayout);
    if (layout.empty()) throw CorruptDataError("empty layout section");
  }
  return CompressedImage::make_view(codec_, isa_, block_size_, original_size_, tables,
                                    std::move(offsets), payload, std::move(original_sizes), ecc,
                                    cert, layout);
}

}  // namespace ccomp::core
