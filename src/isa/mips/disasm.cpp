#include <cinttypes>
#include <cstdio>
#include <string_view>

#include "isa/mips/mips.h"

namespace ccomp::mips {
namespace {

const char* kRegNames[32] = {"$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
                             "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
                             "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
                             "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra"};

bool is_fp_mnemonic(const char* m) {
  // FP register operands get $f names; cheap heuristic on the mnemonic.
  for (const char* p = m; *p; ++p)
    if (*p == '.') return true;
  return m[0] == 'm' && m[1] == 'f' && m[2] == 'c';  // mfc1 / mtc1 mix both
}

}  // namespace

const char* reg_name(unsigned reg) { return kRegNames[reg & 31]; }

std::string disassemble(std::uint32_t word) {
  const auto decoded = decode(word);
  if (!decoded) {
    char buf[32];
    std::snprintf(buf, sizeof buf, ".word 0x%08" PRIx32, word);
    return buf;
  }
  const OpcodeInfo& info = opcode_table()[decoded->opcode];
  std::string out = info.mnemonic;
  if (word == 0) return "nop";
  const bool fp = is_fp_mnemonic(info.mnemonic);
  if (info.is_mem) {
    // Canonical memory syntax: op rt, imm(base). FP loads/stores (lwc1,
    // sdc1, ...) target coprocessor registers.
    const std::string_view mn = info.mnemonic;
    const bool fp_mem = mn.size() >= 2 && mn.substr(mn.size() - 2) == "c1";
    // Sequential += instead of `"lit" + std::to_string(...)` temporaries:
    // the rvalue operator+ overload trips GCC 12's -Wrestrict false
    // positive (PR105651) once inlined, and appending in place is cheaper.
    out += " ";
    if (fp_mem) {
      out += "$f";
      out += std::to_string(decoded->regs[0]);
    } else {
      out += kRegNames[decoded->regs[0]];
    }
    out += ", ";
    out += std::to_string(static_cast<std::int16_t>(decoded->imm16));
    out += "(";
    out += kRegNames[decoded->regs[1]];
    out += ")";
    return out;
  }
  bool first = true;
  auto sep = [&]() {
    out += first ? " " : ", ";
    first = false;
  };
  for (unsigned k = 0; k < info.reg_count; ++k) {
    sep();
    const unsigned reg = decoded->regs[k];
    // Shift amounts render as plain numbers; FP ops use $fN except the rt
    // operand of mfc1/mtc1 which is an integer register.
    const bool shamt_slot = info.reg_shifts[k] == 6 && !fp;
    if (shamt_slot) {
      out += std::to_string(reg);
    } else if (fp && !(k == 0 && info.mnemonic[1] == 'f' && info.mnemonic[2] == 'c') &&
               !(k == 0 && info.mnemonic[1] == 't' && info.mnemonic[2] == 'c')) {
      out += "$f" + std::to_string(reg);
    } else {
      out += kRegNames[reg];
    }
  }
  if (info.has_imm16) {
    sep();
    const auto simm = static_cast<std::int16_t>(decoded->imm16);
    if (info.is_branch) {
      out += "pc" + std::string(simm >= 0 ? "+" : "") + std::to_string((simm + 1) * 4);
    } else {
      out += std::to_string(simm);
    }
  }
  if (info.has_imm26) {
    sep();
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%07x", decoded->imm26 << 2);
    out += buf;
  }
  return out;
}

std::string disassemble_program(std::span<const std::uint32_t> words,
                                std::uint32_t base_address) {
  std::string out;
  out.reserve(words.size() * 32);
  for (std::size_t i = 0; i < words.size(); ++i) {
    char addr[16];
    std::snprintf(addr, sizeof addr, "%08" PRIx32 ":  ",
                  static_cast<std::uint32_t>(base_address + 4 * i));
    out += addr;
    out += disassemble(words[i]);
    out += '\n';
  }
  return out;
}

}  // namespace ccomp::mips
