#include "baseline/bytehuff.h"

#include "coding/huffman.h"
#include "support/bitio.h"
#include "support/error.h"

namespace ccomp::baseline {
namespace {

using coding::HuffmanCode;

class ByteHuffmanDecompressor final : public core::BlockDecompressor {
 public:
  ByteHuffmanDecompressor(const core::CompressedImage& image, HuffmanCode code)
      : BlockDecompressor(image.block_count()), image_(&image), code_(std::move(code)) {}

  std::vector<std::uint8_t> block(std::size_t index) const override {
    const std::size_t bytes = image_->block_original_size(index);
    BitReader in(image_->block_payload(index));
    std::vector<std::uint8_t> out;
    out.reserve(bytes);
    for (std::size_t i = 0; i < bytes; ++i)
      out.push_back(static_cast<std::uint8_t>(code_.decode(in)));
    return out;
  }

 private:
  const core::CompressedImage* image_;
  HuffmanCode code_;
};

}  // namespace

ByteHuffmanCodec::ByteHuffmanCodec(ByteHuffmanOptions options) : options_(options) {
  if (options_.block_size == 0) throw ConfigError("block size must be nonzero");
}

core::CompressedImage ByteHuffmanCodec::compress(std::span<const std::uint8_t> code) const {
  std::vector<std::uint64_t> freq(256, 0);
  for (const std::uint8_t b : code) ++freq[b];
  const HuffmanCode huff = HuffmanCode::from_frequencies(freq);

  std::vector<std::uint8_t> payload;
  std::vector<std::uint32_t> offsets;
  for (std::size_t begin = 0; begin < code.size(); begin += options_.block_size) {
    offsets.push_back(static_cast<std::uint32_t>(payload.size()));
    const std::size_t end = begin + options_.block_size < code.size()
                                ? begin + options_.block_size
                                : code.size();
    BitWriter bits;
    for (std::size_t i = begin; i < end; ++i) huff.encode(bits, code[i]);
    const std::vector<std::uint8_t> block = bits.take();
    payload.insert(payload.end(), block.begin(), block.end());
  }
  offsets.push_back(static_cast<std::uint32_t>(payload.size()));
  if (code.empty()) offsets.assign(1, 0);

  ByteSink tables;
  huff.serialize(tables);
  return core::CompressedImage(core::CodecKind::kByteHuffman, options_.isa,
                               options_.block_size, code.size(), tables.take(),
                               std::move(offsets), std::move(payload));
}

std::unique_ptr<core::BlockDecompressor> ByteHuffmanCodec::make_decompressor(
    const core::CompressedImage& image) const {
  if (image.codec() != core::CodecKind::kByteHuffman)
    throw ConfigError("image was not produced by the byte-Huffman codec");
  ByteSource src(image.tables());
  HuffmanCode code = HuffmanCode::deserialize(src);
  return std::make_unique<ByteHuffmanDecompressor>(image, std::move(code));
}

}  // namespace ccomp::baseline
