// ccomp_stats — a guided tour of the telemetry subsystem (ccomp::obs).
//
// Runs one end-to-end workload — generate a synthetic MIPS benchmark,
// compress it with SAMC and SADC, lint it, then execute a fetch loop
// against the functional and self-healing memory systems — and prints the
// aggregated metrics registry as a table: per-block encode/decode latency
// histograms, cache hit/miss counters, refill latencies, recovery-ladder
// rung counters, and thread-pool load-balance counters.
//
//   ccomp_stats [benchmark-name] [--kb=N] [--threads=N]
//               [--metrics=F]   also write Prometheus text (JSON if F ends
//                               in .json)
//   ccomp_stats --trace=F       record spans; write chrome://tracing JSON
//
// This doubles as the smoke test for the exporters: the CI metrics job
// validates its --metrics JSON against tools/metrics_schema.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "isa/mips/mips.h"
#include "memsys/functional.h"
#include "memsys/selfheal.h"
#include "obs_flags.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "support/parallel.h"
#include "verify/verify.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  examples::ObsFlags obs_flags;
  argc = examples::strip_obs_flags(argc, argv, obs_flags);

  const char* name = "ijpeg";
  std::uint32_t kb = 32;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      par::set_thread_count(static_cast<std::size_t>(std::atoi(argv[i] + 10)));
    } else if (std::strncmp(argv[i], "--kb=", 5) == 0) {
      kb = static_cast<std::uint32_t>(std::atoi(argv[i] + 5));
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: %s [benchmark-name] [--kb=N] [--threads=N]\n"
                  "          [--metrics=F] [--trace=F]\n",
                  argv[0]);
      return 0;
    } else if (argv[i][0] != '-') {
      name = argv[i];
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }

  const workload::Profile* profile = workload::find_profile(name);
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name);
    return 2;
  }
  workload::Profile p = *profile;
  p.code_kb = std::min(p.code_kb, kb);

  try {
    const auto prog = workload::generate_mips_program(p);
    const auto code = mips::words_to_bytes(prog.words);

    // Compression + linting: feeds the samc.*/sadc.*/verify.* series.
    const samc::SamcCodec samc_codec(samc::mips_defaults());
    const sadc::SadcMipsCodec sadc_codec;
    const auto samc_image = samc_codec.compress_verified(code);
    const auto sadc_image = sadc_codec.compress(code);
    const verify::VerifyReport report = verify::verify_image(samc_image);

    // A short fetch trace through both memory systems: feeds the
    // memsys.cache.* counters and memsys.refill_ns / selfheal histograms.
    workload::TraceOptions topt;
    topt.length = 50000;
    const auto trace =
        workload::generate_trace(p, prog.function_starts, prog.words.size(), topt);
    memsys::CacheConfig cache{2 * 1024, 32, 2};
    memsys::FunctionalMemorySystem fun(cache, samc_codec, samc_image);
    memsys::SelfHealingMemorySystem::Options sh_opts;
    sh_opts.cache = cache;
    memsys::SelfHealingMemorySystem heal(sh_opts, sadc_codec, sadc_image);
    for (const std::uint32_t address : trace) {
      fun.fetch(address);
      heal.fetch(address);
    }
    heal.scrub(heal.store().block_count());

    std::printf("%s-like: %zu KB text, %zu fetches, lint %s\n", p.name, code.size() / 1024,
                trace.size(), report.ok() ? "clean" : "FINDINGS");
    std::printf("SAMC ratio %.3f | SADC ratio %.3f\n\n", samc_image.sizes().ratio(),
                sadc_image.sizes().ratio());
    std::fputs(obs::to_table(obs::Registry::instance().snapshot()).c_str(), stdout);
  } catch (const ccomp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return examples::finish_obs(obs_flags, 1);
  }
  return examples::finish_obs(obs_flags, 0);
}
