// Little-endian primitive serialization for container formats.
//
// All ccomp on-disk / in-memory container structures (CompressedImage, LAT,
// dictionaries, Markov tables) use these helpers so the byte layout is
// platform independent.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/error.h"

namespace ccomp {

/// Append-only little-endian byte sink.
class ByteSink {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// LEB128-style variable-length unsigned integer.
  void varint(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);
  /// varint length prefix followed by raw bytes.
  void sized_bytes(std::span<const std::uint8_t> data);

  std::size_t size() const { return bytes_.size(); }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::span<const std::uint8_t> view() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian byte source. Throws CorruptDataError on
/// truncation.
class ByteSource {
 public:
  explicit ByteSource(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  std::span<const std::uint8_t> bytes(std::size_t n);
  std::vector<std::uint8_t> sized_bytes();
  /// Like sized_bytes(), but a view aliasing the source buffer (no copy).
  std::span<const std::uint8_t> sized_bytes_view() {
    return bytes(static_cast<std::size_t>(varint()));
  }

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }
  /// View of the underlying bytes in [begin, end). Used to checksum a region
  /// that has already been consumed. Throws CorruptDataError on bad bounds.
  std::span<const std::uint8_t> window(std::size_t begin, std::size_t end) const;

 private:
  // Phrased against remaining() so an attacker-controlled length near
  // SIZE_MAX cannot overflow pos_ + n past the bound check.
  void need(std::size_t n) const {
    if (n > data_.size() - pos_) throw CorruptDataError("container truncated");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ccomp
