#include "coding/rangecoder.h"

#include "obs/obs.h"

namespace ccomp::coding {

Prob quantize_prob_pow2(Prob p, unsigned max_shift) {
  if (max_shift == 0) max_shift = 1;
  if (max_shift > 15) max_shift = 15;
  // Work with the less probable symbol's probability q = min(p, 1-p), find
  // the closest 2^-s (s >= 1) in log space, and map back.
  const bool zero_is_lps = p <= kProbHalf;
  const std::uint32_t q = zero_is_lps ? p : (0x10000u - p);
  // Find s minimizing |q - 2^(16-s)| over s in [1, max_shift].
  unsigned best_s = 1;
  std::uint32_t best_err = 0xFFFFFFFFu;
  for (unsigned s = 1; s <= max_shift; ++s) {
    const std::uint32_t target = 0x10000u >> s;
    const std::uint32_t err = q > target ? q - target : target - q;
    if (err < best_err) {
      best_err = err;
      best_s = s;
    }
  }
  const std::uint32_t quantized = 0x10000u >> best_s;
  return zero_is_lps ? clamp_prob(quantized) : clamp_prob(0x10000u - quantized);
}

void RangeEncoder::reset() {
  low_ = 0;
  range_ = 0xFFFFFFFFu;
  cache_ = 0;
  cache_size_ = 1;
}

void RangeEncoder::encode_bit(unsigned bit, Prob p0) {
  // Split the interval in proportion to p0. bound is the width of the
  // zero-subinterval; p0 in [1, 65535] guarantees 0 < bound < range.
  const std::uint32_t bound = (range_ >> kProbBits) * p0;
  if (bit == 0) {
    range_ = bound;
  } else {
    low_ += bound;
    range_ -= bound;
  }
  while (range_ < (1u << 24)) {
    ++renorms_;
    shift_low();
    range_ <<= 8;
  }
}

void RangeEncoder::shift_low() {
  if (static_cast<std::uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
    const std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 32);
    out_.push_back(static_cast<std::uint8_t>(cache_ + carry));
    while (--cache_size_ != 0)
      out_.push_back(static_cast<std::uint8_t>(0xFF + carry));
    cache_ = static_cast<std::uint8_t>(low_ >> 24);
  }
  ++cache_size_;
  low_ = (low_ & 0x00FFFFFFull) << 8;
}

void RangeEncoder::finish() {
  // Any value in [low, low+range) decodes the encoded bit sequence; pick the
  // one with the most trailing zero bits so take() can strip zero bytes
  // (blocks are tiny — 32 bytes of code — so flush overhead matters).
  const std::uint64_t top = low_ + range_;
  for (int shift = 32; shift >= 0; shift -= 8) {
    const std::uint64_t mask = (std::uint64_t{1} << shift) - 1;
    const std::uint64_t candidate = (low_ + mask) & ~mask;
    if (candidate < top) {
      low_ = candidate;
      break;
    }
  }
  for (int i = 0; i < 5; ++i) shift_low();
  // Renorm counts are batched per block (one registry add per finish), so
  // the per-bit encode loop never touches the registry.
  CCOMP_COUNT("coder.range.encode_renorms", renorms_);
  renorms_ = 0;
}

std::vector<std::uint8_t> RangeEncoder::take() {
  auto bytes = std::move(out_);
  out_.clear();
  reset();
  // The first emitted byte is priming noise the decoder never uses, and
  // trailing zero bytes are reproduced by the decoder's read-zero-past-end
  // rule; drop both.
  if (!bytes.empty()) bytes.erase(bytes.begin());
  while (!bytes.empty() && bytes.back() == 0) bytes.pop_back();
  return bytes;
}

RangeDecoder::~RangeDecoder() { flush_metrics(); }

void RangeDecoder::flush_metrics() {
  // Batched like the encoder's: one registry add per block, not per bit.
  if (renorms_ == 0) return;
  CCOMP_COUNT("coder.range.decode_renorms", renorms_);
  renorms_ = 0;
}

void RangeDecoder::reset(std::span<const std::uint8_t> data) {
  flush_metrics();
  data_ = data;
  pos_ = 0;
  range_ = 0xFFFFFFFFu;
  code_ = 0;
  // The encoder's priming byte is already stripped from the payload, so four
  // reads load the 32-bit code value.
  for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | next_byte();
}

}  // namespace ccomp::coding
