// Markov model selection — the paper's future work ("some research can be
// done on how to generate the best Markov model given a subject program").
//
// Searches the model family implemented here: contiguous stream divisions
// of several widths plus the randomized-swap-optimized division, crossed
// with inter-stream context widths, scoring each candidate by its total
// estimated cost on a training sample (model cross-entropy + probability
// tables, exactly what ends up in the compressed image).
#pragma once

#include <cstdint>
#include <span>

#include "coding/markov.h"
#include "samc/optimizer.h"

namespace ccomp::samc {

struct AutoTuneOptions {
  std::size_t sample_words = 16384;
  std::size_t block_words = 8;
  /// Also run the stream-division optimizer for each stream count (slower).
  bool use_division_optimizer = true;
  unsigned optimizer_swaps = 60;
  std::uint64_t seed = 0x7E57ull;
};

struct AutoTuneResult {
  coding::MarkovConfig config;
  /// Estimated compressed bits (payload + tables) of the *sample* under the
  /// chosen config; compare across candidates, not across programs.
  double estimated_bits = 0.0;
  /// Estimated compression ratio on the sample (payload + tables only).
  double estimated_ratio = 0.0;
};

/// Pick the best Markov configuration for a program of 32-bit words.
AutoTuneResult choose_markov_config(std::span<const std::uint32_t> words,
                                    const AutoTuneOptions& options = {});

}  // namespace ccomp::samc
