#include "memsys/selfheal.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <string>

#include "layout/layout.h"
#include "obs/obs.h"
#include "support/crc32.h"
#include "support/ecc.h"
#include "support/error.h"

namespace ccomp::memsys {

namespace {

/// Mutable view of one block's payload bytes. Throws CorruptDataError when a
/// faulted LAT places the block outside the payload (block_payload re-checks).
std::span<std::uint8_t> mutable_block_payload(core::CompressedImage& image, std::size_t block) {
  const std::span<const std::uint8_t> view = image.block_payload(block);
  const std::size_t offset = static_cast<std::size_t>(view.data() - image.payload().data());
  return image.mutable_payload().subspan(offset, view.size());
}

std::span<std::uint8_t> mutable_block_ecc(core::CompressedImage& image, std::size_t block) {
  const std::span<const std::uint8_t> view = image.block_ecc(block);
  const std::size_t offset = static_cast<std::size_t>(view.data() - image.ecc().data());
  return image.mutable_ecc().subspan(offset, view.size());
}

bool all_zero(std::span<const std::uint8_t> bytes) {
  return std::all_of(bytes.begin(), bytes.end(), [](std::uint8_t b) { return b == 0; });
}

}  // namespace

SelfHealingMemorySystem::SelfHealingMemorySystem(const Options& options,
                                                 const core::BlockCodec& codec,
                                                 const core::CompressedImage& golden)
    : options_(options),
      golden_(golden),
      store_(golden),
      line_bytes_(options.cache.line_bytes),
      ways_(options.cache.associativity) {
  if (options_.use_ecc && !golden_.has_ecc()) {
    golden_.attach_ecc();
    store_.attach_ecc();
  }
  decompressor_ = layout::make_tier_decompressor(codec, store_);
  remap_ = layout::remap_table(store_);

  // Golden per-block CRCs of the *decompressed* bytes, the ladder's
  // detection gate. Modelled as protected controller SRAM, computed once
  // from the pristine copy at provisioning time. Slot-indexed: the whole
  // ladder works in the store's physical space.
  const auto golden_dec = layout::make_tier_decompressor(codec, golden_);
  golden_crc_.resize(golden_.block_count());
  for (std::size_t b = 0; b < golden_crc_.size(); ++b)
    golden_crc_[b] = crc32(golden_dec->block(b));

  cache_ = std::make_unique<ICache>(options.cache);
  if (!store_.has_variable_blocks()) {
    if (store_.block_size() != line_bytes_)
      throw ConfigError("image block size must equal the cache line size");
    sets_ = options.cache.size_bytes / (line_bytes_ * ways_);
    lines_.resize(static_cast<std::size_t>(sets_) * ways_);
  }
  clb_.resize(options_.clb_entries);

  std::size_t max_compressed = 1;
  for (std::size_t b = 0; b < store_.block_count(); ++b)
    max_compressed = std::max(max_compressed, store_.block_payload(b).size());
  bus_noise_.assign(max_compressed, 0);
}

std::span<std::uint8_t> SelfHealingMemorySystem::clb_bytes() {
  return {reinterpret_cast<std::uint8_t*>(clb_.data()), clb_.size() * sizeof(ClbEntry)};
}

std::uint8_t SelfHealingMemorySystem::entry_parity(const ClbEntry& entry) {
  // XOR fold over every byte the parity protects; any single-bit fault in
  // the entry changes the fold, multi-bit faults fall to the cross-check.
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&entry);
  std::uint8_t p = 0x5A;
  for (std::size_t i = 0; i < offsetof(ClbEntry, parity); ++i) p ^= bytes[i];
  return p;
}

void SelfHealingMemorySystem::clb_access(std::size_t block) {
  if (clb_.empty()) return;
  // What the stored LAT currently says (itself a fault surface — the CLB
  // only guarantees it mirrors the LAT, the block CRC guards the rest).
  const std::uint32_t lat_offset = store_.block_offset(block);
  const std::uint32_t lat_length = store_.block_offset(block + 1) - lat_offset;
  for (ClbEntry& entry : clb_) {
    if (!entry.valid || entry.block != block) continue;
    if (entry_parity(entry) != entry.parity || entry.offset != lat_offset ||
        entry.length != lat_length) {
      stats_.clb_repaired.fetch_add(1, std::memory_order_relaxed);
      CCOMP_COUNT("memsys.selfheal.clb_repaired", 1);
      entry.offset = lat_offset;
      entry.length = lat_length;
      entry.parity = entry_parity(entry);
    }
    return;
  }
  ClbEntry& entry = clb_[clb_cursor_++ % clb_.size()];
  entry.block = static_cast<std::uint32_t>(block);
  entry.offset = lat_offset;
  entry.length = lat_length;
  entry.valid = 1;
  entry.parity = entry_parity(entry);
}

void SelfHealingMemorySystem::apply_stuck_bytes() {
  if (stuck_.empty()) return;
  const std::span<std::uint8_t> payload = store_.mutable_payload();
  for (const StuckByte& s : stuck_) {
    if (s.offset >= payload.size()) continue;
    payload[s.offset] = static_cast<std::uint8_t>((payload[s.offset] & s.and_mask) | s.or_mask);
  }
}

bool SelfHealingMemorySystem::try_decode(std::size_t block, std::vector<std::uint8_t>& out) {
  apply_stuck_bytes();
  try {
    out.resize(store_.block_original_size(block));
    decompressor_->block_into(block, out, scratch_);
  } catch (const Error&) {
    return false;  // typed decoder failure: detected, recoverable
  }
  return crc32(out) == golden_crc_[block];
}

void SelfHealingMemorySystem::refetch_block(std::size_t block) {
  // Heal the LAT words bounding the block first so the payload span can be
  // located again, then restore the payload and check bytes.
  const std::span<std::uint8_t> golden_lat = golden_.mutable_lat_bytes();
  const std::span<std::uint8_t> store_lat = store_.mutable_lat_bytes();
  const std::size_t lat_begin = block * sizeof(std::uint32_t);
  const std::size_t lat_bytes = 2 * sizeof(std::uint32_t);
  std::copy_n(golden_lat.begin() + static_cast<std::ptrdiff_t>(lat_begin), lat_bytes,
              store_lat.begin() + static_cast<std::ptrdiff_t>(lat_begin));

  const std::span<const std::uint8_t> src = golden_.block_payload(block);
  const std::size_t offset = static_cast<std::size_t>(src.data() - golden_.payload().data());
  std::copy(src.begin(), src.end(),
            store_.mutable_payload().begin() + static_cast<std::ptrdiff_t>(offset));
  if (store_.has_ecc() && golden_.has_ecc()) {
    const std::span<const std::uint8_t> esrc = golden_.block_ecc(block);
    const std::size_t eoffset = static_cast<std::size_t>(esrc.data() - golden_.ecc().data());
    std::copy(esrc.begin(), esrc.end(),
              store_.mutable_ecc().begin() + static_cast<std::ptrdiff_t>(eoffset));
  }
  for (ClbEntry& entry : clb_)
    if (entry.valid && entry.block == block) entry.valid = 0;
}

void SelfHealingMemorySystem::refill(std::size_t block, std::vector<std::uint8_t>& out) {
  CCOMP_SPAN("selfheal.refill");
  CCOMP_TIMER("memsys.selfheal.refill_ns");
  stats_.refills.fetch_add(1, std::memory_order_relaxed);
  CCOMP_COUNT("memsys.selfheal.refills", 1);
  clb_access(block);

  // Transient bus noise: the refill engine sees store XOR noise on the first
  // transfer; the noise is gone on retry.
  bool noise_applied = false;
  if (!all_zero(bus_noise_)) {
    try {
      const std::span<std::uint8_t> target = mutable_block_payload(store_, block);
      if (!target.empty()) {
        for (std::size_t i = 0; i < target.size() && i < bus_noise_.size(); ++i)
          target[i] ^= bus_noise_[i];
        noise_applied = true;
      }
    } catch (const Error&) {
      // A faulted LAT hides the block from the bus model; decode will fail
      // and the ladder below recovers.
    }
  }
  bool ok = try_decode(block, out);
  if (noise_applied) {
    const std::span<std::uint8_t> target = mutable_block_payload(store_, block);
    for (std::size_t i = 0; i < target.size() && i < bus_noise_.size(); ++i)
      target[i] ^= bus_noise_[i];
    std::fill(bus_noise_.begin(), bus_noise_.end(), 0);
  }
  if (ok) return;
  stats_.faults_detected.fetch_add(1, std::memory_order_relaxed);
  CCOMP_COUNT("memsys.selfheal.faults_detected", 1);

  // Rung 2: bus retry — only meaningful when noise rode the first transfer.
  if (noise_applied && try_decode(block, out)) {
    stats_.bus_recovered.fetch_add(1, std::memory_order_relaxed);
    CCOMP_COUNT("memsys.selfheal.bus_recovered", 1);
    return;
  }

  // Rung 3: SECDED correction, written back into the store (self-heal).
  if (store_.has_ecc()) {
    try {
      const ecc::BlockResult result =
          ecc::correct_block(mutable_block_payload(store_, block), mutable_block_ecc(store_, block));
      if (result.recovered() && try_decode(block, out)) {
        stats_.ecc_corrected.fetch_add(1, std::memory_order_relaxed);
        CCOMP_COUNT("memsys.selfheal.ecc_corrected", 1);
        return;
      }
    } catch (const Error&) {
      // LAT fault: the block cannot even be located; fall through.
    }
  }

  // Rung 4: re-fetch payload, ECC and LAT words from the golden copy.
  refetch_block(block);
  if (try_decode(block, out)) {
    stats_.refetched.fetch_add(1, std::memory_order_relaxed);
    CCOMP_COUNT("memsys.selfheal.refetched", 1);
    return;
  }

  // Rung 5: escalate. The fault is detected and reported — wrong bytes are
  // never served.
  stats_.escalated.fetch_add(1, std::memory_order_relaxed);
  CCOMP_COUNT("memsys.selfheal.escalated", 1);
  fault_log_.push_back(
      {block, "block " + std::to_string(block) +
                  " failed its CRC gate after bus retry, ECC correction, and golden refetch"});
  throw FaultEscalationError(fault_log_.back().message);
}

std::vector<std::uint8_t> SelfHealingMemorySystem::read_block(std::size_t index) {
  std::vector<std::uint8_t> out;
  read_block_into(index, out);
  return out;
}

void SelfHealingMemorySystem::read_block_into(std::size_t index, std::vector<std::uint8_t>& out) {
  if (index >= store_.block_count()) throw ConfigError("block index out of range");
  refill(index, out);
}

void SelfHealingMemorySystem::set_scrub_order(std::vector<std::uint32_t> order) {
  for (const std::uint32_t block : order)
    if (block >= store_.block_count()) throw ConfigError("scrub order index out of range");
  scrub_order_ = std::move(order);
  scrub_cursor_ = 0;
}

std::size_t SelfHealingMemorySystem::scrub(std::size_t max_blocks) {
  CCOMP_SPAN("selfheal.scrub");
  const std::size_t blocks =
      scrub_order_.empty() ? store_.block_count() : scrub_order_.size();
  if (blocks == 0) return 0;
  // Clamp the sweep budget to one full pass and keep the cursor invariantly
  // inside [0, blocks). The old `cursor++ % blocks` idiom let the cursor grow
  // without bound, so a cursor carried past the end of a short image (after
  // the owning system was rebuilt, or on an image with fewer blocks than a
  // previous sweep assumed) aliased early blocks and starved the tail.
  const std::size_t budget = std::min(max_blocks, blocks);
  if (scrub_cursor_ >= blocks) scrub_cursor_ = 0;
  for (std::size_t visited = 0; visited < budget; ++visited) {
    const std::size_t block =
        scrub_order_.empty() ? scrub_cursor_ : scrub_order_[scrub_cursor_];
    scrub_cursor_ = (scrub_cursor_ + 1 == blocks) ? 0 : scrub_cursor_ + 1;
    stats_.scrubbed.fetch_add(1, std::memory_order_relaxed);
    CCOMP_COUNT("memsys.selfheal.scrubbed", 1);
    bool healthy = false;
    if (store_.has_ecc()) {
      // An ECC-only sweep, like a hardware scrubber: cheap, no decompression.
      // A ≥3-bit fault can alias to a miscorrection here; the refill CRC gate
      // still catches it before any byte is served.
      apply_stuck_bytes();
      try {
        const ecc::BlockResult result = ecc::correct_block(mutable_block_payload(store_, block),
                                                           mutable_block_ecc(store_, block));
        if (result.corrected_words > 0) {
          stats_.scrub_corrected.fetch_add(1, std::memory_order_relaxed);
          CCOMP_COUNT("memsys.selfheal.scrub_corrected", 1);
        }
        healthy = result.uncorrectable_words == 0;
      } catch (const Error&) {
        healthy = false;  // LAT fault over this block
      }
    } else {
      // scratch_.block is the caller-side staging buffer (decoders never
      // touch it), so the scrub sweep reuses it alongside the decode arenas
      // instead of allocating a throwaway vector per block.
      healthy = try_decode(block, scratch_.block);
    }
    if (!healthy) {
      refetch_block(block);
      stats_.scrub_refetched.fetch_add(1, std::memory_order_relaxed);
      CCOMP_COUNT("memsys.selfheal.scrub_refetched", 1);
    }
  }
  return budget;
}

void SelfHealingMemorySystem::reset_stats() {
  stats_.reset();
  cache_->reset_stats();
}

void SelfHealingMemorySystem::invalidate_cache() {
  for (Line& line : lines_) line.valid = false;
  for (ClbEntry& entry : clb_) entry.valid = 0;
}

void SelfHealingMemorySystem::repair_all() {
  const std::span<const std::uint8_t> payload = golden_.payload();
  std::copy(payload.begin(), payload.end(), store_.mutable_payload().begin());
  if (golden_.has_ecc() && store_.has_ecc()) {
    const std::span<const std::uint8_t> ecc = golden_.ecc();
    std::copy(ecc.begin(), ecc.end(), store_.mutable_ecc().begin());
  }
  const std::span<std::uint8_t> golden_lat = golden_.mutable_lat_bytes();
  std::copy(golden_lat.begin(), golden_lat.end(), store_.mutable_lat_bytes().begin());
  std::fill(bus_noise_.begin(), bus_noise_.end(), 0);
  invalidate_cache();
}

SelfHealingMemorySystem::Line& SelfHealingMemorySystem::lookup(std::uint32_t address) {
  if (store_.has_variable_blocks())
    throw ConfigError("address fetch needs uniform address-aligned blocks");
  cache_->access(address);
  ++clock_;
  const std::uint64_t line_index = address / line_bytes_;
  const std::uint32_t set = static_cast<std::uint32_t>(line_index) & (sets_ - 1);
  const std::uint64_t tag = line_index / sets_;
  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  Line* victim = base;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.last_use = clock_;
      return line;
    }
    if (!line.valid) {
      if (victim->valid) victim = &line;
    } else if (victim->valid && line.last_use < victim->last_use) {
      victim = &line;
    }
  }
  if (line_index >= remap_.size()) throw ConfigError("fetch outside the program");
  const std::size_t block = remap_[line_index];
  refill(block, victim->bytes);
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = clock_;
  return *victim;
}

std::uint32_t SelfHealingMemorySystem::fetch(std::uint32_t address) {
  if (address % 4 != 0) throw ConfigError("instruction fetch must be word aligned");
  const Line& line = lookup(address);
  const std::uint32_t offset = address % line_bytes_;
  if (offset + 4 > line.bytes.size()) throw ConfigError("fetch beyond program end");
  std::uint32_t word = 0;
  for (int b = 3; b >= 0; --b) word = (word << 8) | line.bytes[offset + static_cast<unsigned>(b)];
  return word;
}

std::uint8_t SelfHealingMemorySystem::fetch_byte(std::uint32_t address) {
  const Line& line = lookup(address);
  const std::uint32_t offset = address % line_bytes_;
  if (offset >= line.bytes.size()) throw ConfigError("fetch beyond program end");
  return line.bytes[offset];
}

}  // namespace ccomp::memsys
