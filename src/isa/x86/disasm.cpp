#include <cinttypes>
#include <cstdio>

#include "isa/x86/x86.h"

namespace ccomp::x86 {
namespace {

const char* kReg32[8] = {"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"};
const char* kReg16[8] = {"ax", "cx", "dx", "bx", "sp", "bp", "si", "di"};
const char* kReg8[8] = {"al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"};
const char* kCond[16] = {"o", "no", "b",  "ae", "e",  "ne", "be", "a",
                         "s", "ns", "p",  "np", "l",  "ge", "le", "g"};
const char* kAluNames[8] = {"add", "or", "adc", "sbb", "and", "sub", "xor", "cmp"};
const char* kShiftNames[8] = {"rol", "ror", "rcl", "rcr", "shl", "shr", "sal", "sar"};
const char* kGroup3Names[8] = {"test", "test", "not", "neg", "mul", "imul", "div", "idiv"};
const char* kGroup5Names[8] = {"inc", "dec", "call", "callf", "jmp", "jmpf", "push", "?"};

struct Cursor {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
  std::uint8_t u8() { return data[pos++]; }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint16_t u16() {
    const std::uint8_t lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
};

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%" PRIx32, v);
  return buf;
}

// Render the r/m operand; consumes modrm/sib/disp from the cursor.
// reg_out receives the modrm.reg field.
std::string rm_operand(Cursor& c, unsigned& reg_out, bool byte_regs = false) {
  const std::uint8_t modrm = c.u8();
  const std::uint8_t mod = modrm >> 6;
  const std::uint8_t rm = modrm & 7;
  reg_out = (modrm >> 3) & 7;
  if (mod == 3) return byte_regs ? kReg8[rm] : kReg32[rm];

  std::string base;
  bool have_base = true;
  std::uint8_t sib = 0;
  if (rm == 4) {
    sib = c.u8();
    const std::uint8_t index = (sib >> 3) & 7;
    const std::uint8_t sbase = sib & 7;
    if (sbase == 5 && mod == 0) {
      have_base = false;
    } else {
      base = kReg32[sbase];
    }
    if (index != 4) {
      const unsigned scale = 1u << (sib >> 6);
      if (!base.empty()) base += "+";
      base += kReg32[index];
      if (scale > 1) {
        // Split += avoids the rvalue operator+ that trips GCC 12's
        // -Wrestrict false positive (PR105651) under inlining.
        base += "*";
        base += std::to_string(scale);
      }
    }
  } else if (rm == 5 && mod == 0) {
    have_base = false;
  } else {
    base = kReg32[rm];
  }

  std::int32_t disp = 0;
  if (mod == 1) {
    disp = static_cast<std::int8_t>(c.u8());
  } else if (mod == 2 || !have_base) {
    disp = static_cast<std::int32_t>(c.u32());
  }
  std::string out = "[";
  out += base;
  if (disp != 0 || base.empty()) {
    if (disp >= 0 && !base.empty()) out += "+";
    out += std::to_string(disp);
  }
  out += "]";
  return out;
}

std::string modrm_pair(Cursor& c, bool reg_is_dest, bool byte_regs = false) {
  unsigned reg;
  const std::string rm = rm_operand(c, reg, byte_regs);
  const std::string r = byte_regs ? kReg8[reg] : kReg32[reg];
  return reg_is_dest ? r + ", " + rm : rm + ", " + r;
}

std::string raw_bytes(std::span<const std::uint8_t> data, std::size_t n) {
  std::string out = "db";
  for (std::size_t i = 0; i < n && i < data.size(); ++i) {
    char buf[8];
    std::snprintf(buf, sizeof buf, " 0x%02x", data[i]);
    out += buf;
  }
  return out;
}

}  // namespace

std::string disassemble(std::span<const std::uint8_t> data) {
  const InstrLayout layout = decode_layout(data);
  Cursor c{data, 0};

  // Prefixes we render inline.
  std::string prefix;
  bool op16 = false;
  for (unsigned i = 0; i < layout.prefix_len; ++i) {
    const std::uint8_t p = c.u8();
    if (p == 0x66) op16 = true;
    else if (p == 0xF0) prefix += "lock ";
    else if (p == 0xF2) prefix += "repne ";
    else if (p == 0xF3) prefix += "rep ";
  }
  const char* const* regs = op16 ? kReg16 : kReg32;

  const std::uint8_t op = c.u8();
  unsigned reg = 0;

  // Two-byte opcodes.
  if (op == 0x0F) {
    const std::uint8_t op2 = c.u8();
    if (op2 >= 0x80 && op2 <= 0x8F)
      return prefix + "j" + kCond[op2 & 0xF] + " " +
             std::to_string(static_cast<std::int32_t>(c.u32()));
    if (op2 >= 0x90 && op2 <= 0x9F) {
      const std::string rm = rm_operand(c, reg, true);
      return prefix + "set" + kCond[op2 & 0xF] + " " + rm;
    }
    if (op2 >= 0x40 && op2 <= 0x4F)
      return prefix + "cmov" + kCond[op2 & 0xF] + " " + modrm_pair(c, true);
    switch (op2) {
      case 0xAF: return prefix + "imul " + modrm_pair(c, true);
      case 0xB6: case 0xB7: {
        unsigned r;
        const std::string rm = rm_operand(c, r, op2 == 0xB6);
        return prefix + "movzx " + regs[r] + ", " + rm;
      }
      case 0xBE: case 0xBF: {
        unsigned r;
        const std::string rm = rm_operand(c, r, op2 == 0xBE);
        return prefix + "movsx " + regs[r] + ", " + rm;
      }
      case 0xBC: return prefix + "bsf " + modrm_pair(c, true);
      case 0xBD: return prefix + "bsr " + modrm_pair(c, true);
      case 0xA2: return prefix + "cpuid";
      case 0x31: return prefix + "rdtsc";
      case 0x1F: { unsigned r; (void)rm_operand(c, r); return prefix + "nop"; }
      default: return raw_bytes(data, layout.total);
    }
  }

  // One-byte ALU block 0x00-0x3D.
  if (op < 0x40) {
    const unsigned group = op >> 3;
    const unsigned form = op & 7;
    if (form <= 3) {
      const bool byte_form = (form & 1) == 0;
      const bool reg_is_dest = (form & 2) != 0;
      return prefix + kAluNames[group] + " " + modrm_pair(c, reg_is_dest, byte_form);
    }
    if (form == 4) return prefix + std::string(kAluNames[group]) + " al, " +
                          std::to_string(c.u8());
    if (form == 5)
      return prefix + std::string(kAluNames[group]) + (op16 ? " ax, " : " eax, ") +
             hex32(op16 ? c.u16() : c.u32());
    return raw_bytes(data, layout.total);  // seg push/pop legacy slots
  }

  if (op >= 0x40 && op <= 0x47) return prefix + "inc " + regs[op & 7];
  if (op >= 0x48 && op <= 0x4F) return prefix + "dec " + regs[op & 7];
  if (op >= 0x50 && op <= 0x57) return prefix + "push " + regs[op & 7];
  if (op >= 0x58 && op <= 0x5F) return prefix + "pop " + regs[op & 7];
  if (op == 0x68) return prefix + "push " + hex32(op16 ? c.u16() : c.u32());
  if (op == 0x69) {
    const std::string pair = modrm_pair(c, true);
    return prefix + "imul " + pair + ", " + hex32(op16 ? c.u16() : c.u32());
  }
  if (op == 0x6A) return prefix + "push " + std::to_string(static_cast<std::int8_t>(c.u8()));
  if (op == 0x6B) {
    const std::string pair = modrm_pair(c, true);
    return prefix + "imul " + pair + ", " + std::to_string(static_cast<std::int8_t>(c.u8()));
  }
  if (op >= 0x70 && op <= 0x7F)
    return prefix + "j" + kCond[op & 0xF] + " " +
           std::to_string(static_cast<std::int8_t>(c.u8()));
  if (op >= 0x80 && op <= 0x83) {
    unsigned ext;
    const std::string rm = rm_operand(c, ext, op == 0x80 || op == 0x82);
    std::string imm;
    if (op == 0x81) imm = hex32(op16 ? c.u16() : c.u32());
    else imm = std::to_string(static_cast<std::int8_t>(c.u8()));
    return prefix + kAluNames[ext] + " " + rm + ", " + imm;
  }
  if (op == 0x84 || op == 0x85) return prefix + "test " + modrm_pair(c, false, op == 0x84);
  if (op == 0x86 || op == 0x87) return prefix + "xchg " + modrm_pair(c, false, op == 0x86);
  if (op >= 0x88 && op <= 0x8B)
    return prefix + "mov " + modrm_pair(c, (op & 2) != 0, (op & 1) == 0);
  if (op == 0x8D) return prefix + "lea " + modrm_pair(c, true);
  if (op == 0x8F) { unsigned r; return prefix + "pop " + rm_operand(c, r); }
  if (op == 0x90) return prefix + "nop";
  if (op >= 0x91 && op <= 0x97) return prefix + "xchg eax, " + regs[op & 7];
  if (op == 0x98) return prefix + (op16 ? "cbw" : "cwde");
  if (op == 0x99) return prefix + (op16 ? "cwd" : "cdq");
  if (op == 0xA8) return prefix + "test al, " + std::to_string(c.u8());
  if (op == 0xA9) return prefix + "test eax, " + hex32(op16 ? c.u16() : c.u32());
  if (op >= 0xB0 && op <= 0xB7)
    return prefix + "mov " + std::string(kReg8[op & 7]) + ", " + std::to_string(c.u8());
  if (op >= 0xB8 && op <= 0xBF)
    return prefix + "mov " + regs[op & 7] + ", " + hex32(op16 ? c.u16() : c.u32());
  if (op == 0xC0 || op == 0xC1) {
    unsigned ext;
    const std::string rm = rm_operand(c, ext, op == 0xC0);
    return prefix + kShiftNames[ext] + " " + rm + ", " + std::to_string(c.u8());
  }
  if (op == 0xC2) return prefix + "ret " + std::to_string(c.u16());
  if (op == 0xC3) return prefix + "ret";
  if (op == 0xC6 || op == 0xC7) {
    unsigned ext;
    const std::string rm = rm_operand(c, ext, op == 0xC6);
    const std::uint32_t imm = op == 0xC6 ? c.u8() : (op16 ? c.u16() : c.u32());
    return prefix + "mov " + rm + ", " + hex32(imm);
  }
  if (op == 0xC9) return prefix + "leave";
  if (op == 0xCC) return prefix + "int3";
  if (op == 0xCD) return prefix + "int " + std::to_string(c.u8());
  if (op >= 0xD0 && op <= 0xD3) {
    unsigned ext;
    const std::string rm = rm_operand(c, ext, (op & 1) == 0);
    return prefix + kShiftNames[ext] + " " + rm + (op >= 0xD2 ? ", cl" : ", 1");
  }
  if (op >= 0xD8 && op <= 0xDF) {
    // x87: /digit selects the operation; mod=3 forms act on the FP stack.
    const std::uint8_t modrm = c.data[c.pos];
    const unsigned ext = (modrm >> 3) & 7;
    if ((modrm >> 6) == 3) {
      ++c.pos;
      const unsigned sti = modrm & 7;
      if (op == 0xDE && ext == 0) return prefix + "faddp st(" + std::to_string(sti) + ")";
      if (op == 0xDE && ext == 1) return prefix + "fmulp st(" + std::to_string(sti) + ")";
      char buf[24];
      std::snprintf(buf, sizeof buf, "fpu %02x %02x", op, modrm);
      return prefix + buf;
    }
    unsigned reg_field;
    const std::string rm = rm_operand(c, reg_field);
    static const char* kD8[8] = {"fadd", "fmul", "fcom", "fcomp",
                                 "fsub", "fsubr", "fdiv", "fdivr"};
    if (op == 0xD8) return prefix + kD8[reg_field] + " dword " + rm;
    if (op == 0xDC) return prefix + kD8[reg_field] + " qword " + rm;
    if (op == 0xD9 && reg_field == 0) return prefix + "fld dword " + rm;
    if (op == 0xD9 && reg_field == 2) return prefix + "fst dword " + rm;
    if (op == 0xD9 && reg_field == 3) return prefix + "fstp dword " + rm;
    if (op == 0xDD && reg_field == 0) return prefix + "fld qword " + rm;
    if (op == 0xDD && reg_field == 2) return prefix + "fst qword " + rm;
    if (op == 0xDD && reg_field == 3) return prefix + "fstp qword " + rm;
    char buf[16];
    std::snprintf(buf, sizeof buf, "fpu %02x /%u ", op, ext);
    return prefix + buf + rm;
  }
  if (op == 0xE8) return prefix + "call " + std::to_string(static_cast<std::int32_t>(c.u32()));
  if (op == 0xE9) return prefix + "jmp " + std::to_string(static_cast<std::int32_t>(c.u32()));
  if (op == 0xEB) return prefix + "jmp " + std::to_string(static_cast<std::int8_t>(c.u8()));
  if (op == 0xF6 || op == 0xF7) {
    unsigned ext;
    const std::string rm = rm_operand(c, ext, op == 0xF6);
    std::string out = prefix + kGroup3Names[ext] + " " + rm;
    if (ext <= 1) out += ", " + hex32(op == 0xF6 ? c.u8() : (op16 ? c.u16() : c.u32()));
    return out;
  }
  if (op == 0xFE || op == 0xFF) {
    unsigned ext;
    const std::string rm = rm_operand(c, ext, op == 0xFE);
    return prefix + kGroup5Names[ext] + " " + rm;
  }
  return raw_bytes(data, layout.total);
}

std::string disassemble_program(std::span<const std::uint8_t> code,
                                std::uint32_t base_address) {
  std::string out;
  std::size_t pos = 0;
  while (pos < code.size()) {
    const InstrLayout layout = decode_layout(code.subspan(pos));
    char addr[16];
    std::snprintf(addr, sizeof addr, "%08" PRIx32 ":  ",
                  static_cast<std::uint32_t>(base_address + pos));
    out += addr;
    out += disassemble(code.subspan(pos, layout.total));
    out += '\n';
    pos += layout.total;
  }
  return out;
}

}  // namespace ccomp::x86
