#include "core/image.h"

#include <gtest/gtest.h>

#include "core/report.h"
#include "support/error.h"

namespace ccomp::core {
namespace {

CompressedImage make_uniform_image() {
  std::vector<std::uint8_t> tables = {1, 2, 3};
  std::vector<std::uint32_t> offsets = {0, 10, 17, 30};
  std::vector<std::uint8_t> payload(30, 0xAB);
  return CompressedImage(CodecKind::kSamc, IsaKind::kMips, 32, 96, std::move(tables),
                         std::move(offsets), std::move(payload));
}

TEST(Image, BlockGeometry) {
  const auto image = make_uniform_image();
  EXPECT_EQ(image.block_count(), 3u);
  EXPECT_EQ(image.block_payload(0).size(), 10u);
  EXPECT_EQ(image.block_payload(2).size(), 13u);
  EXPECT_EQ(image.block_original_size(0), 32u);
  EXPECT_EQ(image.block_original_size(2), 32u);
  EXPECT_EQ(image.block_original_offset(2), 64u);
  EXPECT_THROW(image.block_payload(3), ConfigError);
}

TEST(Image, PartialLastBlock) {
  std::vector<std::uint32_t> offsets = {0, 5, 9};
  const CompressedImage image(CodecKind::kSamc, IsaKind::kMips, 32, 40, {},
                              std::move(offsets), std::vector<std::uint8_t>(9, 0));
  EXPECT_EQ(image.block_count(), 2u);
  EXPECT_EQ(image.block_original_size(1), 8u);
}

TEST(Image, SizesAndRatios) {
  const auto image = make_uniform_image();
  const SizeBreakdown s = image.sizes();
  EXPECT_EQ(s.original, 96u);
  EXPECT_EQ(s.payload, 30u);
  EXPECT_EQ(s.tables, 3u);
  EXPECT_GT(s.lat, 0u);
  EXPECT_NEAR(s.ratio(), 33.0 / 96.0, 1e-12);
  EXPECT_GT(s.ratio_with_lat(), s.ratio());
}

TEST(Image, LatEncodingIsCompact) {
  // 3 blocks: one 4-byte group anchor + 3 one-byte lengths = 7 bytes.
  EXPECT_EQ(make_uniform_image().lat_bytes(), 7u);
}

TEST(Image, ConstructorValidation) {
  // Sentinel mismatch.
  EXPECT_THROW(CompressedImage(CodecKind::kSamc, IsaKind::kMips, 32, 96, {}, {0, 10},
                               std::vector<std::uint8_t>(30, 0)),
               ConfigError);
  // Block count inconsistent with original size.
  EXPECT_THROW(CompressedImage(CodecKind::kSamc, IsaKind::kMips, 32, 200, {}, {0, 10, 30},
                               std::vector<std::uint8_t>(30, 0)),
               ConfigError);
  // Decreasing offsets.
  EXPECT_THROW(CompressedImage(CodecKind::kSamc, IsaKind::kMips, 32, 64, {}, {0, 20, 10},
                               std::vector<std::uint8_t>(10, 0)),
               ConfigError);
}

TEST(Image, VariableBlocks) {
  std::vector<std::uint32_t> offsets = {0, 8, 20, 23};
  std::vector<std::uint32_t> sizes = {33, 30, 37};
  const CompressedImage image(CodecKind::kSadc, IsaKind::kX86, 32, 100, {},
                              std::move(offsets), std::vector<std::uint8_t>(23, 0),
                              std::move(sizes));
  EXPECT_TRUE(image.has_variable_blocks());
  EXPECT_EQ(image.block_original_size(1), 30u);
  EXPECT_EQ(image.block_original_offset(2), 63u);
  // Sizes must sum to the original size.
  EXPECT_THROW(CompressedImage(CodecKind::kSadc, IsaKind::kX86, 32, 99, {}, {0, 8, 20, 23},
                               std::vector<std::uint8_t>(23, 0), {33, 30, 37}),
               ConfigError);
}

TEST(Image, SerializeRoundTripUniform) {
  const auto image = make_uniform_image();
  ByteSink sink;
  image.serialize(sink);
  const auto bytes = sink.take();
  ByteSource src(bytes);
  const auto restored = CompressedImage::deserialize(src);
  EXPECT_EQ(restored.block_count(), image.block_count());
  EXPECT_EQ(restored.original_size(), image.original_size());
  EXPECT_EQ(restored.block_offset(1), image.block_offset(1));
  EXPECT_TRUE(std::equal(restored.payload().begin(), restored.payload().end(),
                         image.payload().begin()));
}

TEST(Image, SerializeRoundTripVariable) {
  const CompressedImage image(CodecKind::kSadc, IsaKind::kX86, 32, 100, {1, 2},
                              {0, 8, 20, 23}, std::vector<std::uint8_t>(23, 7),
                              {33, 30, 37});
  ByteSink sink;
  image.serialize(sink);
  const auto bytes = sink.take();
  ByteSource src(bytes);
  const auto restored = CompressedImage::deserialize(src);
  EXPECT_TRUE(restored.has_variable_blocks());
  EXPECT_EQ(restored.block_original_size(2), 37u);
}

TEST(Image, ChecksumTrailerRejectsFlippedBit) {
  const auto image = make_uniform_image();
  ByteSink sink;
  image.serialize(sink);
  auto bytes = sink.take();
  // Flip a payload bit: every field still parses, only the CRC catches it.
  bytes[bytes.size() - 10] ^= 0x04;
  {
    ByteSource src(bytes);
    EXPECT_THROW(CompressedImage::deserialize(src), ChecksumError);
  }
  // A loader that has already checked integrity elsewhere can opt out.
  ByteSource src(bytes);
  const auto restored = CompressedImage::deserialize(src, /*verify_checksum=*/false);
  EXPECT_EQ(restored.block_count(), image.block_count());
}

TEST(Image, DeserializeRejectsGarbage) {
  const std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8};
  ByteSource src(garbage);
  EXPECT_THROW(CompressedImage::deserialize(src), CorruptDataError);
}

TEST(RatioTable, MeansAreColumnwise) {
  RatioTable table("test", {"a", "b"});
  const double r1[] = {0.5, 1.0};
  const double r2[] = {0.7, 0.8};
  table.add_row("x", r1);
  table.add_row("y", r2);
  const auto means = table.column_means();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_NEAR(means[0], 0.6, 1e-12);
  EXPECT_NEAR(means[1], 0.9, 1e-12);
  const double bad[] = {1.0};
  EXPECT_THROW(table.add_row("z", bad), ConfigError);
}

}  // namespace
}  // namespace ccomp::core
