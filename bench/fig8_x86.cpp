// Figure 8 reproduction: compression ratios on Pentium Pro (x86) for all 18
// SPEC95 benchmarks under UNIX compress, gzip, SAMC, and SADC.
//
// Paper shape: the file compressors widen their lead on CISC code; SAMC
// (single byte stream, no field subdivision possible) trails; SADC does
// better than SAMC but stays behind gzip.
#include <cstdio>

#include "baseline/filecodecs.h"
#include "bench_common.h"
#include "core/report.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "workload/x86_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv);
  std::printf("Figure 8: compression ratios on Pentium Pro (scale=%.2f)\n", scale);

  core::RatioTable table("Fig.8 x86: compressed/original",
                         {"compress", "gzip", "SAMC", "SADC"});
  const samc::SamcCodec samc_codec(samc::x86_defaults());
  const sadc::SadcX86Codec sadc_codec;

  for (const workload::Profile& profile : workload::spec95_profiles()) {
    const workload::Profile p = bench::scaled_profile(profile, scale);
    const auto code = workload::generate_x86(p);
    const double r_compress = baseline::unix_compress(code).ratio();
    const double r_gzip = baseline::gzip_like(code).ratio();
    const double r_samc = samc_codec.compress(code).sizes().ratio();
    const double r_sadc = sadc_codec.compress(code).sizes().ratio();
    const double row[] = {r_compress, r_gzip, r_samc, r_sadc};
    table.add_row(p.name, row);
    std::fflush(stdout);
  }
  table.print();

  const auto means = table.column_means();
  std::printf("\nShape checks (paper expectations):\n");
  std::printf("  gzip clearly ahead of SAMC: %.3f vs %.3f\n", means[1], means[2]);
  std::printf("  SADC between gzip and SAMC: %s\n",
              (means[3] < means[2] && means[3] > means[1]) ? "yes" : "check");
  return 0;
}
