// Table T-FAULT: run-time cost of the self-healing refill path. The fault
// tolerance ISSUE adds to the Wolfe/Chanin memory system is not free — every
// refill pays a CRC gate, and ECC verification/ correction costs more — so
// this table measures refill latency clean vs faulted, with the ECC rung on
// and off, plus scrubber throughput and the storage cost of the check bytes.
#include <cstdio>

#include "bench_common.h"
#include "isa/mips/mips.h"
#include "memsys/selfheal.h"
#include "samc/samc.h"
#include "support/faultinject.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_fault", argc, argv);
  std::printf("Table T-FAULT: cost of the self-healing refill ladder (scale=%.2f)\n\n",
              scale);

  const workload::Profile p = bench::scaled_profile(*workload::find_profile("go"), scale);
  const auto code = mips::words_to_bytes(workload::generate_mips(p));
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(code);
  const std::size_t blocks = image.block_count();

  auto make_system = [&](bool use_ecc) {
    memsys::SelfHealingMemorySystem::Options options;
    options.cache.line_bytes = image.block_size();
    options.cache.size_bytes = image.block_size() * 256;
    options.use_ecc = use_ecc;
    return memsys::SelfHealingMemorySystem(options, codec, image);
  };

  {
    auto with = make_system(true);
    const auto sizes = with.store().sizes();
    std::printf("benchmark go: %zu KB text, %zu blocks of %u B, ECC adds %zu B (+%.2f%%)\n\n",
                code.size() / 1024, blocks, image.block_size(), sizes.ecc,
                100.0 * static_cast<double>(sizes.ecc) /
                    static_cast<double>(sizes.payload));
  }

  std::printf("%-28s %14s %14s\n", "refill path", "ecc on", "ecc off");
  const std::size_t rounds = 40;
  for (const bool faulted : {false, true}) {
    double ns[2] = {0, 0};
    for (const bool use_ecc : {true, false}) {
      auto sys = make_system(use_ecc);
      fault::FaultInjector injector(42);
      const double total = bench::time_total_ns(rounds, [&](std::size_t) {
        for (std::size_t b = 0; b < blocks; ++b) {
          if (faulted) injector.flip_one(sys.store_payload());
          (void)sys.read_block(b);
        }
        if (faulted) sys.repair_all();
      });
      ns[use_ecc ? 0 : 1] = total / static_cast<double>(rounds * blocks);
      json.add(faulted ? "faulted" : "clean",
               use_ecc ? "refill_latency_ecc_on" : "refill_latency_ecc_off",
               ns[use_ecc ? 0 : 1], "ns");
    }
    std::printf("%-28s %12.0fns %12.0fns\n",
                faulted ? "faulted (1 flip per round)" : "clean", ns[0], ns[1]);
  }

  // Scrubber: SECDED sweep throughput over a clean store (the steady-state
  // background cost) and over a store taking constant single-bit damage.
  std::printf("\n%-28s %14s\n", "scrubber", "blocks/ms");
  for (const bool faulted : {false, true}) {
    auto sys = make_system(true);
    fault::FaultInjector injector(43);
    const std::size_t sweeps = 200;
    const double total = bench::time_total_ns(sweeps, [&](std::size_t) {
      if (faulted) injector.flip_one(sys.store_payload());
      (void)sys.scrub(blocks);
    });
    const double per_ms = static_cast<double>(sweeps * blocks) / (total / 1e6);
    json.add(faulted ? "faulted" : "clean", "scrub_throughput", per_ms, "blocks/ms");
    std::printf("%-28s %14.0f\n", faulted ? "under fault load" : "clean store", per_ms);
  }

  return 0;
}
