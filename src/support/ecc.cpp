#include "support/ecc.h"

#include <bit>

#include "support/error.h"

namespace ccomp::ecc {
namespace {

// Hamming codeword positions 1..71: powers of two hold the 7 parity bits,
// the remaining 64 positions hold data bits in index order. Position 0 is
// unused (the overall parity travels as bit 7 of the check byte).
constexpr bool is_pow2(unsigned v) { return v != 0 && (v & (v - 1)) == 0; }

struct PositionTables {
  std::uint8_t data_pos[64] = {};   // data bit i -> codeword position
  std::int8_t pos_to_data[72] = {};  // codeword position -> data bit (-1 = parity)
};

constexpr PositionTables make_tables() {
  PositionTables t;
  for (auto& p : t.pos_to_data) p = -1;
  unsigned i = 0;
  for (unsigned pos = 1; pos <= 71; ++pos) {
    if (is_pow2(pos)) continue;
    t.data_pos[i] = static_cast<std::uint8_t>(pos);
    t.pos_to_data[pos] = static_cast<std::int8_t>(i);
    ++i;
  }
  return t;
}

constexpr PositionTables kTables = make_tables();

// XOR of the codeword positions of every set data bit. Parity bit k sits at
// position 2^k, so bit k of this value is exactly the Hamming parity p_k.
unsigned data_syndrome(std::uint64_t data) {
  unsigned syn = 0;
  while (data != 0) {
    const int i = std::countr_zero(data);
    syn ^= kTables.data_pos[i];
    data &= data - 1;
  }
  return syn;
}

std::uint64_t load_le(std::span<const std::uint8_t> bytes) {
  std::uint64_t w = 0;
  for (std::size_t b = bytes.size(); b-- > 0;) w = (w << 8) | bytes[b];
  return w;
}

void store_le(std::uint64_t w, std::span<std::uint8_t> bytes) {
  for (std::size_t b = 0; b < bytes.size(); ++b)
    bytes[b] = static_cast<std::uint8_t>(w >> (8 * b));
}

}  // namespace

std::uint8_t secded_encode(std::uint64_t data) {
  std::uint8_t check = static_cast<std::uint8_t>(data_syndrome(data) & 0x7F);
  const int ones = std::popcount(data) + std::popcount(static_cast<unsigned>(check));
  if (ones & 1) check |= 0x80;  // even overall parity across all 72 bits
  return check;
}

Status secded_correct(std::uint64_t& data, std::uint8_t& check) {
  // Parity bits contribute their own positions (2^k) to the syndrome, which
  // is exactly the low 7 bits of the stored check byte.
  const unsigned syn = data_syndrome(data) ^ (check & 0x7Fu);
  const bool parity_odd =
      ((std::popcount(data) + std::popcount(static_cast<unsigned>(check))) & 1) != 0;
  if (syn == 0 && !parity_odd) return Status::kClean;
  if (!parity_odd) return Status::kUncorrectable;  // nonzero syndrome, even parity: double
  // Odd overall parity: a single flipped bit, located by the syndrome.
  if (syn == 0) {
    check ^= 0x80;  // the overall parity bit itself
    return Status::kCorrected;
  }
  if (syn > 71) return Status::kUncorrectable;  // syndrome names no stored bit
  if (is_pow2(syn)) {
    check = static_cast<std::uint8_t>(check ^ syn);  // a Hamming parity bit
    return Status::kCorrected;
  }
  data ^= std::uint64_t{1} << kTables.pos_to_data[syn];
  return Status::kCorrected;
}

void encode_block(std::span<const std::uint8_t> data, std::span<std::uint8_t> out) {
  if (out.size() != ecc_bytes_for(data.size()))
    throw ConfigError("ECC output span does not match the data size");
  std::size_t w = 0;
  for (std::size_t at = 0; at < data.size(); at += 8, ++w) {
    const std::size_t len = data.size() - at < 8 ? data.size() - at : 8;
    out[w] = secded_encode(load_le(data.subspan(at, len)));
  }
}

BlockResult correct_block(std::span<std::uint8_t> data, std::span<std::uint8_t> check) {
  // Callers can hand in a span located through a *faulted* LAT, so the size
  // relation is an input invariant here, not a programmer guarantee.
  if (check.size() != ecc_bytes_for(data.size()))
    throw CorruptDataError("ECC check span does not match the data size");
  BlockResult result;
  std::size_t w = 0;
  for (std::size_t at = 0; at < data.size(); at += 8, ++w) {
    const std::size_t len = data.size() - at < 8 ? data.size() - at : 8;
    std::uint64_t word = load_le(data.subspan(at, len));
    std::uint8_t c = check[w];
    const Status status = secded_correct(word, c);
    switch (status) {
      case Status::kClean:
        break;
      case Status::kCorrected:
        // A short tail is zero-padded; a "correction" that lands in the
        // padding can only come from multi-bit damage — refuse it rather
        // than store a word that disagrees with its own length.
        if (len < 8 && (word >> (8 * len)) != 0) {
          ++result.uncorrectable_words;
        } else {
          store_le(word, data.subspan(at, len));
          check[w] = c;
          ++result.corrected_words;
        }
        break;
      case Status::kUncorrectable:
        ++result.uncorrectable_words;
        break;
    }
  }
  return result;
}

}  // namespace ccomp::ecc
