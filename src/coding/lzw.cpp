#include "coding/lzw.h"

#include <unordered_map>

#include "support/bitio.h"
#include "support/error.h"

namespace ccomp::coding {
namespace {

constexpr std::uint32_t kClearCode = 256;
constexpr std::uint32_t kFirstFree = 257;

unsigned bits_for(std::uint32_t next_code, unsigned min_bits, unsigned max_bits) {
  unsigned bits = min_bits;
  while (bits < max_bits && next_code > (std::uint32_t{1} << bits)) ++bits;
  return bits;
}

}  // namespace

std::vector<std::uint8_t> lzw_compress(std::span<const std::uint8_t> input,
                                       const LzwOptions& options) {
  if (options.min_code_bits < 9 || options.max_code_bits > 24 ||
      options.min_code_bits > options.max_code_bits)
    throw ConfigError("bad LZW code widths");

  BitWriter out;
  if (input.empty()) return out.take();

  // Dictionary: (prefix code << 8 | next byte) -> code.
  std::unordered_map<std::uint32_t, std::uint32_t> dict;
  dict.reserve(std::size_t{1} << options.max_code_bits);
  const std::uint32_t max_entries = std::uint32_t{1} << options.max_code_bits;
  std::uint32_t next_code = kFirstFree;

  std::uint32_t current = input[0];
  for (std::size_t i = 1; i < input.size(); ++i) {
    const std::uint32_t key = (current << 8) | input[i];
    const auto it = dict.find(key);
    if (it != dict.end()) {
      current = it->second;
      continue;
    }
    // Width sizing: the encoder's next_code is one ahead of the decoder's at
    // the corresponding read (the decoder learns each entry one code later),
    // so the encoder sizes codes for values <= next_code - 1 while the
    // decoder sizes for values <= its next_code. Both give the same width.
    out.write_bits(current, bits_for(next_code, options.min_code_bits, options.max_code_bits));
    if (next_code < max_entries) {
      dict.emplace(key, next_code++);
    } else {
      // Table full: emit CLEAR and start over (block mode).
      out.write_bits(kClearCode,
                     bits_for(next_code, options.min_code_bits, options.max_code_bits));
      dict.clear();
      next_code = kFirstFree;
    }
    current = input[i];
  }
  out.write_bits(current, bits_for(next_code, options.min_code_bits, options.max_code_bits));
  return out.take();
}

std::vector<std::uint8_t> lzw_decompress(std::span<const std::uint8_t> input,
                                         std::size_t original_size,
                                         const LzwOptions& options) {
  std::vector<std::uint8_t> out;
  out.reserve(original_size);
  if (original_size == 0) return out;

  // Dictionary as (prefix, byte) pairs; entries 0..255 are implicit.
  struct Entry {
    std::uint32_t prefix;
    std::uint8_t byte;
  };
  std::vector<Entry> entries;
  const std::uint32_t max_entries = std::uint32_t{1} << options.max_code_bits;
  entries.reserve(max_entries - kFirstFree);

  BitReader in(input);
  std::vector<std::uint8_t> scratch;
  auto expand = [&](std::uint32_t code) {
    scratch.clear();
    while (code >= kFirstFree) {
      const Entry& e = entries.at(code - kFirstFree);
      scratch.push_back(e.byte);
      code = e.prefix;
    }
    scratch.push_back(static_cast<std::uint8_t>(code));
    out.insert(out.end(), scratch.rbegin(), scratch.rend());
    return static_cast<std::uint8_t>(code);  // first byte of the expansion
  };

  std::uint32_t next_code = kFirstFree;
  auto read_code = [&]() {
    return static_cast<std::uint32_t>(
        in.read_bits(bits_for(next_code + 1, options.min_code_bits, options.max_code_bits)));
  };

  std::uint32_t prev = read_code();
  if (prev >= kFirstFree) throw CorruptDataError("LZW first code not a literal");
  std::uint8_t prev_first = expand(prev);

  while (out.size() < original_size) {
    const std::uint32_t code = read_code();
    if (code == kClearCode) {
      entries.clear();
      next_code = kFirstFree;
      prev = read_code();
      if (prev >= kFirstFree) throw CorruptDataError("LZW code after CLEAR not a literal");
      prev_first = expand(prev);
      continue;
    }
    std::uint8_t first;
    if (code < next_code) {
      // Known code: the new entry is prev + first byte of code's expansion.
      first = expand(code);
    } else if (code == next_code) {
      // KwKwK case: code refers to the entry being defined right now.
      // Define it first so expand() can resolve it.
      if (next_code >= max_entries) throw CorruptDataError("LZW table overflow");
      entries.push_back({prev, prev_first});
      ++next_code;
      first = expand(code);
      prev = code;
      prev_first = first;
      continue;
    } else {
      throw CorruptDataError("LZW code beyond dictionary");
    }
    if (next_code < max_entries) {
      entries.push_back({prev, first});
      ++next_code;
    }
    prev = code;
    prev_first = first;
  }
  if (out.size() != original_size) throw CorruptDataError("LZW output size mismatch");
  return out;
}

}  // namespace ccomp::coding
