#include "coding/huffman.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/histogram.h"
#include "support/rng.h"

namespace ccomp::coding {
namespace {

std::vector<std::uint64_t> random_freq(Rng& rng, std::size_t n, double skew) {
  std::vector<std::uint64_t> freq(n, 0);
  for (int i = 0; i < 20000; ++i) ++freq[rng.pick_skewed(n, skew)];
  return freq;
}

TEST(Huffman, RoundTripsSkewedAlphabet) {
  Rng rng(42);
  const auto freq = random_freq(rng, 64, 0.7);
  const HuffmanCode code = HuffmanCode::from_frequencies(freq);

  std::vector<std::size_t> message;
  for (int i = 0; i < 5000; ++i) message.push_back(rng.pick_skewed(64, 0.7));
  BitWriter w;
  for (const auto s : message)
    if (freq[s] > 0) code.encode(w, s);
  const auto bytes = w.take();
  BitReader r(bytes);
  for (const auto s : message) {
    if (freq[s] > 0) {
      EXPECT_EQ(code.decode(r), s);
    }
  }
}

TEST(Huffman, WithinOneBitOfEntropy) {
  Rng rng(43);
  const auto freq = random_freq(rng, 256, 0.8);
  const HuffmanCode code = HuffmanCode::from_frequencies(freq);
  std::uint64_t total = 0;
  for (const auto f : freq) total += f;
  const double avg_bits =
      static_cast<double>(code.encoded_bits(freq)) / static_cast<double>(total);
  const double h = entropy_bits(freq);
  EXPECT_GE(avg_bits + 1e-9, h);
  EXPECT_LE(avg_bits, h + 1.0);
}

TEST(Huffman, DegenerateSingleSymbol) {
  std::vector<std::uint64_t> freq(10, 0);
  freq[3] = 100;
  const HuffmanCode code = HuffmanCode::from_frequencies(freq);
  EXPECT_EQ(code.length_of(3), 1u);
  BitWriter w;
  code.encode(w, 3);
  code.encode(w, 3);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(code.decode(r), 3u);
  EXPECT_EQ(code.decode(r), 3u);
}

TEST(Huffman, EmptyAlphabetProducesNoCodes) {
  std::vector<std::uint64_t> freq(16, 0);
  const HuffmanCode code = HuffmanCode::from_frequencies(freq);
  for (std::size_t s = 0; s < 16; ++s) EXPECT_EQ(code.length_of(s), 0u);
}

TEST(Huffman, EncodingAbsentSymbolThrows) {
  std::vector<std::uint64_t> freq = {10, 0, 5};
  const HuffmanCode code = HuffmanCode::from_frequencies(freq);
  BitWriter w;
  EXPECT_THROW(code.encode(w, 1), ConfigError);
}

TEST(Huffman, LengthLimitIsRespected) {
  // Fibonacci-like frequencies force very skewed (deep) optimal codes.
  std::vector<std::uint64_t> freq;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freq.push_back(a);
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const HuffmanCode code = HuffmanCode::from_frequencies(freq, 12);
  for (std::size_t s = 0; s < freq.size(); ++s) {
    EXPECT_GT(code.length_of(s), 0u);
    EXPECT_LE(code.length_of(s), 12u);
  }
  // Kraft equality must still hold for a complete code; verify by decode.
  BitWriter w;
  for (std::size_t s = 0; s < freq.size(); ++s) code.encode(w, s);
  const auto bytes = w.take();
  BitReader r(bytes);
  for (std::size_t s = 0; s < freq.size(); ++s) EXPECT_EQ(code.decode(r), s);
}

TEST(Huffman, SerializeRoundTrip) {
  Rng rng(44);
  const auto freq = random_freq(rng, 256, 0.85);
  const HuffmanCode code = HuffmanCode::from_frequencies(freq);
  ByteSink sink;
  code.serialize(sink);
  const auto bytes = sink.take();
  ByteSource src(bytes);
  const HuffmanCode restored = HuffmanCode::deserialize(src);
  ASSERT_EQ(restored.alphabet_size(), code.alphabet_size());
  for (std::size_t s = 0; s < 256; ++s) {
    EXPECT_EQ(restored.length_of(s), code.length_of(s));
    if (code.length_of(s) > 0) {
      EXPECT_EQ(restored.code_of(s), code.code_of(s));
    }
  }
}

TEST(Huffman, SerializationUsesZeroRuns) {
  std::vector<std::uint64_t> freq(1000, 0);
  freq[0] = 5;
  freq[999] = 5;
  const HuffmanCode code = HuffmanCode::from_frequencies(freq);
  EXPECT_LT(code.table_bytes(), 20u);  // the 998 zero lengths collapse
}

TEST(Huffman, KraftViolatingLengthsRejected) {
  // Three symbols of length 1 violate Kraft.
  EXPECT_THROW(HuffmanCode::from_lengths({1, 1, 1}), CorruptDataError);
}

TEST(Huffman, InvalidPrefixThrowsOnDecode) {
  // Incomplete code: lengths {2,2} leave half the code space unused; a
  // stream of 1-bits never resolves.
  const HuffmanCode code = HuffmanCode::from_lengths({2, 2});
  std::vector<std::uint8_t> ones(4, 0xFF);
  BitReader r(ones);
  EXPECT_THROW(code.decode(r), CorruptDataError);
}

TEST(Huffman, FastAndSerialPathsAgree) {
  // Force codes longer than the fast table's 10-bit window so decode()
  // exercises both the LUT hit and the serial fallback in one stream.
  std::vector<std::uint64_t> freq;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 30; ++i) {
    freq.push_back(a);
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const HuffmanCode code = HuffmanCode::from_frequencies(freq, 16);
  unsigned max_len = 0;
  for (std::size_t s = 0; s < freq.size(); ++s) max_len = std::max(max_len, code.length_of(s));
  ASSERT_GT(max_len, 10u);  // the sweep must actually cross the LUT limit

  Rng rng(4242);
  BitWriter w;
  std::vector<std::size_t> message;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t s = rng.pick_skewed(freq.size(), 0.55);
    message.push_back(s);
    code.encode(w, s);
  }
  const auto bytes = w.take();
  BitReader r(bytes);
  for (const auto s : message) ASSERT_EQ(code.decode(r), s);
}

TEST(Huffman, CanonicalOrderIsByLengthThenSymbol) {
  // Equal frequencies: canonical codes must be assigned in symbol order.
  std::vector<std::uint64_t> freq = {10, 10, 10, 10};
  const HuffmanCode code = HuffmanCode::from_frequencies(freq);
  for (std::size_t s = 1; s < 4; ++s) {
    ASSERT_EQ(code.length_of(s), code.length_of(0));
    EXPECT_EQ(code.code_of(s), code.code_of(s - 1) + 1);
  }
}

struct HuffmanSweepParam {
  std::size_t alphabet;
  double skew;
  unsigned limit;
};

class HuffmanSweep : public ::testing::TestWithParam<HuffmanSweepParam> {};

TEST_P(HuffmanSweep, RoundTripAndLimitHold) {
  const auto param = GetParam();
  Rng rng(param.alphabet * 7919 + param.limit);
  const auto freq = random_freq(rng, param.alphabet, param.skew);
  const HuffmanCode code = HuffmanCode::from_frequencies(freq, param.limit);
  BitWriter w;
  std::vector<std::size_t> message;
  for (int i = 0; i < 2000; ++i) {
    const std::size_t s = rng.pick_skewed(param.alphabet, param.skew);
    if (freq[s] == 0) continue;
    message.push_back(s);
    code.encode(w, s);
  }
  for (std::size_t s = 0; s < param.alphabet; ++s)
    EXPECT_LE(code.length_of(s), param.limit);
  const auto bytes = w.take();
  BitReader r(bytes);
  for (const auto s : message) EXPECT_EQ(code.decode(r), s);
}

INSTANTIATE_TEST_SUITE_P(
    AlphabetsAndLimits, HuffmanSweep,
    ::testing::Values(HuffmanSweepParam{2, 0.5, 16}, HuffmanSweepParam{3, 0.9, 4},
                      HuffmanSweepParam{32, 0.6, 8}, HuffmanSweepParam{256, 0.8, 16},
                      HuffmanSweepParam{256, 0.95, 10}, HuffmanSweepParam{500, 0.7, 16}));

}  // namespace
}  // namespace ccomp::coding
