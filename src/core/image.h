// CompressedImage: the container a compressed-code memory system stores.
//
// Layout mirrors the Wolfe/Chanin organisation the paper builds on: a
// header, the codec's tables (Markov probability tables, SADC dictionary +
// Huffman tables, ...), the Line Address Table mapping block index ->
// compressed payload offset, and the concatenated per-block payloads.
//
// The LAT is serialized compactly (one absolute offset per group of 8
// blocks + one length byte per block), which is how real implementations
// keep its overhead a few percent. Ratios are reported both the way the
// paper reports them (payload + tables, no LAT — Sec. 3 "the final storage
// requirements are the encoded message and the Markov trees") and with the
// LAT charged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/serialize.h"

namespace ccomp::core {

enum class CodecKind : std::uint8_t {
  kSamc = 1,
  kSadc = 2,
  kByteHuffman = 3,
  kSamcX86Split = 4,  // SAMC with per-field stream subdivision (x86)
};
enum class IsaKind : std::uint8_t { kMips = 1, kX86 = 2, kRawBytes = 3 };

/// Where the bytes of a compressed image go.
struct SizeBreakdown {
  std::size_t original = 0;
  std::size_t payload = 0;  // compressed blocks
  std::size_t tables = 0;   // models / dictionaries / Huffman tables
  std::size_t lat = 0;      // serialized line address table
  std::size_t ecc = 0;      // per-block SECDED check bytes (0 when absent)
  std::size_t layout = 0;   // placement-plan section (0 when absent)

  /// Everything the embedded system stores for this image.
  std::size_t total() const { return payload + tables + lat + ecc + layout; }

  /// Paper-equivalent compression ratio: (payload + tables) / original.
  double ratio() const {
    return original == 0 ? 0.0
                         : static_cast<double>(payload + tables) / static_cast<double>(original);
  }
  /// Ratio with the LAT and ECC overheads charged as well (the full
  /// embedded cost).
  double ratio_with_lat() const {
    return original == 0 ? 0.0
                         : static_cast<double>(payload + tables + lat + ecc + layout) /
                               static_cast<double>(original);
  }
};

class CompressedImage {
 public:
  CompressedImage() = default;

  /// Uniform blocks: every block covers exactly block_size original bytes
  /// (except the last). Fixed-width ISAs use this form.
  CompressedImage(CodecKind codec, IsaKind isa, std::uint32_t block_size,
                  std::uint64_t original_size, std::vector<std::uint8_t> tables,
                  std::vector<std::uint32_t> block_offsets, std::vector<std::uint8_t> payload);

  /// Variable blocks: block i covers original_sizes[i] bytes. Used by
  /// variable-length ISAs (x86), where blocks are instruction-aligned groups
  /// of roughly block_size bytes.
  CompressedImage(CodecKind codec, IsaKind isa, std::uint32_t block_size,
                  std::uint64_t original_size, std::vector<std::uint8_t> tables,
                  std::vector<std::uint32_t> block_offsets, std::vector<std::uint8_t> payload,
                  std::vector<std::uint32_t> block_original_sizes);

  /// Zero-copy view over caller-owned section storage (the mmap'd v3.1
  /// aligned container — see core/mapped.h): payload/tables/ECC/
  /// certificate/layout spans alias the backing store, only the LAT and
  /// per-block sizes are parsed into owned vectors. The backing store must
  /// outlive the returned image and every copy of it. View images are
  /// immutable: the mutable_* fault surface and attach_*/drop_* throw
  /// ConfigError — call to_owned() first when mutation is needed.
  static CompressedImage make_view(CodecKind codec, IsaKind isa, std::uint32_t block_size,
                                   std::uint64_t original_size,
                                   std::span<const std::uint8_t> tables,
                                   std::vector<std::uint32_t> block_offsets,
                                   std::span<const std::uint8_t> payload,
                                   std::vector<std::uint32_t> block_original_sizes,
                                   std::span<const std::uint8_t> ecc,
                                   std::span<const std::uint8_t> certificate,
                                   std::span<const std::uint8_t> layout);

  bool is_view() const { return view_; }
  /// Deep copy of a view into owned storage (plain copy for owned images).
  CompressedImage to_owned() const;

  CodecKind codec() const { return codec_; }
  IsaKind isa() const { return isa_; }
  /// Uncompressed bytes per block (= cache line size).
  std::uint32_t block_size() const { return block_size_; }
  std::uint64_t original_size() const { return original_size_; }
  std::size_t block_count() const {
    return block_offsets_.empty() ? 0 : block_offsets_.size() - 1;
  }

  std::span<const std::uint8_t> tables() const { return view_ ? tables_view_ : tables_; }
  std::span<const std::uint8_t> payload() const { return view_ ? payload_view_ : payload_; }

  /// Compressed payload bytes of one block.
  std::span<const std::uint8_t> block_payload(std::size_t index) const;

  /// Uncompressed byte size of one block (the last block may be short; with
  /// variable blocks, each block has its own size).
  std::size_t block_original_size(std::size_t index) const;

  /// Byte offset of block `index` within the original code.
  std::uint64_t block_original_offset(std::size_t index) const;

  bool has_variable_blocks() const { return !block_original_sizes_.empty(); }

  // --- Per-block SECDED ECC (format v2, header flag bit 1) ---------------
  //
  // One 8-bit Hamming(72,64) check word per 8 payload bytes of each block,
  // concatenated in block order. The self-healing memory system uses it to
  // repair single-bit store faults in place; images without ECC still load
  // everywhere (the flag bit gates the section).

  // --- Decode certificate (format v3, header flag bit 2) -----------------
  //
  // An opaque serialized ccomp::analysis::DecodeCertificate blob: the
  // machine-checked worst-case decode bounds proved for this image. Stored
  // opaquely so core stays independent of the analysis layer; loaders that
  // care (FunctionalMemorySystem strict mode, ccomp_lint --certify)
  // deserialize and re-validate it. Images without one still load
  // everywhere (the flag bit gates the section).

  bool has_certificate() const { return !certificate().empty(); }
  /// Attach a serialized certificate blob (replaces any existing one).
  /// Rejects an empty blob — use drop_certificate() to remove the section.
  /// Throws ConfigError on a view image.
  void attach_certificate(std::vector<std::uint8_t> blob);
  void drop_certificate();
  std::span<const std::uint8_t> certificate() const {
    return view_ ? certificate_view_ : std::span<const std::uint8_t>(certificate_);
  }

  // --- Placement plan (format v3, header flag bit 3) ----------------------
  //
  // An opaque serialized ccomp::layout::PlacementPlan blob: the profile-
  // guided block permutation, per-block codec tiers, and the trace-trained
  // next-block predictor table. Stored opaquely so core stays independent
  // of the layout layer; consumers (memsys, ImageServer, ccomp_lint)
  // deserialize it via layout::PlacementPlan::deserialize. Images without
  // one still load everywhere (the flag bit gates the section).

  bool has_layout() const { return !layout().empty(); }
  /// Attach a serialized placement-plan blob (replaces any existing one).
  /// Rejects an empty blob — use drop_layout() to remove the section.
  /// Throws ConfigError on a view image.
  void attach_layout(std::vector<std::uint8_t> blob);
  void drop_layout();
  std::span<const std::uint8_t> layout() const {
    return view_ ? layout_view_ : std::span<const std::uint8_t>(layout_);
  }

  bool has_ecc() const { return !ecc_offsets_.empty(); }
  /// Compute and attach per-block SECDED check bytes over the payload.
  /// Idempotent (recomputes when already present). Throws ConfigError on a
  /// view image.
  void attach_ecc();
  /// Attach externally produced check bytes; size must equal the sum of
  /// ecc::ecc_bytes_for(block payload size) over all blocks.
  void attach_ecc(std::vector<std::uint8_t> ecc);
  /// Remove the ECC section (images compare/serialize as format v1).
  void drop_ecc();
  std::span<const std::uint8_t> ecc() const {
    return view_ ? ecc_view_ : std::span<const std::uint8_t>(ecc_);
  }
  /// Check bytes covering one block's payload. Requires has_ecc().
  std::span<const std::uint8_t> block_ecc(std::size_t index) const;

  // --- Fault-injection surface -------------------------------------------
  //
  // Mutable views of the regions a fault-prone store physically holds,
  // used by the fault injector (support/faultinject.h) and the self-healing
  // memory system's writeback path. Not part of the codec API. All three
  // throw ConfigError on a view image (the mmap'd backing is read-only and
  // shared) — materialize with to_owned() first.

  std::span<std::uint8_t> mutable_payload();
  std::span<std::uint8_t> mutable_tables();
  std::span<std::uint8_t> mutable_ecc();
  /// The LAT words as raw little-endian-in-memory bytes (what the stored
  /// serialized table decodes to in the refill engine's view).
  std::span<std::uint8_t> mutable_lat_bytes() {
    return {reinterpret_cast<std::uint8_t*>(block_offsets_.data()),
            block_offsets_.size() * sizeof(std::uint32_t)};
  }

  /// The LAT lookup the cache refill engine performs.
  std::uint32_t block_offset(std::size_t index) const { return block_offsets_.at(index); }

  /// Serialized LAT cost in bytes (group-anchored encoding).
  std::size_t lat_bytes() const;

  SizeBreakdown sizes() const;

  /// Whole-container (de)serialization. The serialized form ends with a
  /// CRC-32 trailer over every preceding container byte; deserialize verifies
  /// it (throwing ChecksumError on mismatch) unless `verify_checksum` is
  /// false, which the static verifier uses to run best-effort deep checks on
  /// an image whose trailer already failed.
  void serialize(ByteSink& sink) const;
  static CompressedImage deserialize(ByteSource& src, bool verify_checksum = true);

 private:
  CodecKind codec_ = CodecKind::kSamc;
  IsaKind isa_ = IsaKind::kRawBytes;
  std::uint32_t block_size_ = 32;
  std::uint64_t original_size_ = 0;
  std::vector<std::uint8_t> tables_;
  /// block_offsets_[i] = payload offset of block i; one extra sentinel entry
  /// equal to payload size, so block i spans [offsets[i], offsets[i+1]).
  std::vector<std::uint32_t> block_offsets_;
  std::vector<std::uint8_t> payload_;
  /// Empty for uniform blocks; else original byte count per block.
  std::vector<std::uint32_t> block_original_sizes_;
  /// Cumulative original offsets when variable (size = blocks + 1).
  std::vector<std::uint64_t> block_original_offsets_;
  /// Per-block SECDED check bytes, concatenated; empty when absent.
  std::vector<std::uint8_t> ecc_;
  /// ecc_ offset of each block's check bytes (size = blocks + 1); empty
  /// when no ECC section is attached.
  std::vector<std::uint32_t> ecc_offsets_;
  /// Serialized DecodeCertificate blob; empty when absent.
  std::vector<std::uint8_t> certificate_;
  /// Serialized PlacementPlan blob; empty when absent.
  std::vector<std::uint8_t> layout_;

  /// True when the byte sections alias caller-owned storage (make_view).
  /// The owned vectors above stay empty for those sections; the LAT
  /// (block_offsets_) and per-block sizes are always parsed and owned.
  bool view_ = false;
  std::span<const std::uint8_t> tables_view_;
  std::span<const std::uint8_t> payload_view_;
  std::span<const std::uint8_t> ecc_view_;
  std::span<const std::uint8_t> certificate_view_;
  std::span<const std::uint8_t> layout_view_;

  /// Shared offset/size validation for the owning ctors and make_view.
  void validate_and_index();
};

}  // namespace ccomp::core
